//! Error and trend-fidelity metrics — the quantitative backbone of the
//! paper's question: *a simulator can be wrong in absolute terms; is it
//! still right about trends?*
//!
//! - [`mare`]: mean absolute relative error of a simulator's predictions
//!   against hardware (the paper's "30% or more" yardstick for absolute
//!   accuracy),
//! - [`RelativeError`]: per-prediction error decomposition with direction,
//! - [`kendall_tau`]: rank agreement between two orderings — does the
//!   simulator *order* design alternatives the way hardware does, even
//!   when every absolute number is off?
//! - [`trend_fidelity`]: the paper's speedup-trend test, packaged: compare
//!   a simulator's speedup curve against hardware's point by point and
//!   report worst-case and mean curve error,
//! - [`SimulatorScorecard`]: everything above for one simulator across a
//!   workload suite, ready for ranking simulators the way §3.4 does.

use crate::figures::{RelativeFigure, SpeedupCurve};

/// One prediction's error against hardware.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelativeError {
    /// Simulator time / hardware time.
    pub relative: f64,
}

impl RelativeError {
    /// Creates an error record from a relative execution time.
    pub fn new(relative: f64) -> RelativeError {
        RelativeError { relative }
    }

    /// Absolute fractional error, |rel − 1|.
    pub fn magnitude(&self) -> f64 {
        (self.relative - 1.0).abs()
    }

    /// True if the simulator predicted a shorter time than hardware.
    pub fn optimistic(&self) -> bool {
        self.relative < 1.0
    }
}

/// Mean absolute relative error over a set of relative execution times.
/// Returns 0 for an empty set.
pub fn mare(relatives: &[f64]) -> f64 {
    if relatives.is_empty() {
        return 0.0;
    }
    relatives.iter().map(|r| (r - 1.0).abs()).sum::<f64>() / relatives.len() as f64
}

/// Kendall's τ-a rank-correlation between two equally indexed sequences:
/// +1 = identical ordering, −1 = reversed, 0 = unrelated.
///
/// # Panics
///
/// Panics if the sequences differ in length or have fewer than 2 items.
pub fn kendall_tau(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "sequences must align");
    let n = a.len();
    assert!(n >= 2, "rank correlation needs at least two items");
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let da = a[j] - a[i];
            let db = b[j] - b[i];
            let product = da * db;
            if product > 0.0 {
                concordant += 1;
            } else if product < 0.0 {
                discordant += 1;
            }
        }
    }
    let pairs = (n * (n - 1) / 2) as f64;
    (concordant - discordant) as f64 / pairs
}

/// The trend-fidelity comparison of one simulator's speedup curve against
/// hardware's.
#[derive(Debug, Clone)]
pub struct TrendFidelity {
    /// Per-point speedup ratio (sim speedup / hardware speedup) at each
    /// shared processor count, in ascending count order.
    pub point_ratios: Vec<(u32, f64)>,
    /// Largest |ratio − 1| across the curve (the paper's "off by 30% or
    /// more" observation is this number).
    pub worst_error: f64,
    /// Mean |ratio − 1| across the curve.
    pub mean_error: f64,
    /// Rank agreement of the two curves (τ = 1 when the simulator orders
    /// the processor counts identically — almost always true, but broken
    /// curves like Figure 5's over-clocked Mipsy can dip).
    pub tau: f64,
}

/// Compares `sim`'s speedup curve to `hardware`'s over their shared
/// processor counts (P = 1 is skipped: both are 1.0 by construction).
///
/// Returns `None` if fewer than two processor counts are shared.
pub fn trend_fidelity(hardware: &SpeedupCurve, sim: &SpeedupCurve) -> Option<TrendFidelity> {
    let mut point_ratios = Vec::new();
    let mut hw_series = Vec::new();
    let mut sim_series = Vec::new();
    for (p, hw_s) in &hardware.points {
        if *p == 1 {
            continue;
        }
        if let Some(sim_s) = sim.at(*p) {
            point_ratios.push((*p, sim_s / hw_s));
            hw_series.push(*hw_s);
            sim_series.push(sim_s);
        }
    }
    if point_ratios.len() < 2 {
        return None;
    }
    let worst_error = point_ratios
        .iter()
        .map(|(_, r)| (r - 1.0).abs())
        .fold(0.0, f64::max);
    let mean_error = point_ratios
        .iter()
        .map(|(_, r)| (r - 1.0).abs())
        .sum::<f64>()
        / point_ratios.len() as f64;
    let tau = kendall_tau(&hw_series, &sim_series);
    Some(TrendFidelity {
        point_ratios,
        worst_error,
        mean_error,
        tau,
    })
}

/// A simulator's report card over a workload suite (one relative-figure
/// column), as §3.4 summarizes: absolute error can be large while trend
/// behaviour stays usable.
#[derive(Debug, Clone)]
pub struct SimulatorScorecard {
    /// The simulator's label.
    pub sim: String,
    /// Per-application relative times.
    pub relatives: Vec<(String, f64)>,
    /// Mean absolute relative error across applications.
    pub mare: f64,
    /// Worst single-application error.
    pub worst: f64,
    /// Fraction of applications predicted optimistically (< 1.0).
    pub optimistic_fraction: f64,
    /// Optional per-stall-class error attribution against the gold
    /// standard (filled by callers that ran both platforms with a
    /// cycle-accounting profiler; see [`crate::attrib::attribute`]).
    pub attribution: Option<crate::attrib::AttributionReport>,
}

/// Builds a scorecard for every simulator column in a relative figure,
/// sorted best (lowest MARE) first. Failed cells (error-marked or
/// non-finite relatives) are excluded so a partial matrix still ranks
/// its healthy columns.
pub fn scorecards(fig: &RelativeFigure) -> Vec<SimulatorScorecard> {
    use std::collections::BTreeMap;
    let mut by_sim: BTreeMap<&str, Vec<(String, f64)>> = BTreeMap::new();
    for p in &fig.points {
        if p.error.is_some() || !p.relative.is_finite() {
            continue;
        }
        by_sim
            .entry(p.sim.as_str())
            .or_default()
            .push((p.app.to_owned(), p.relative));
    }
    let mut cards: Vec<SimulatorScorecard> = by_sim
        .into_iter()
        .map(|(sim, relatives)| {
            let values: Vec<f64> = relatives.iter().map(|(_, r)| *r).collect();
            let worst = values.iter().map(|r| (r - 1.0).abs()).fold(0.0, f64::max);
            let optimistic =
                values.iter().filter(|r| **r < 1.0).count() as f64 / values.len() as f64;
            SimulatorScorecard {
                sim: sim.to_owned(),
                mare: mare(&values),
                worst,
                optimistic_fraction: optimistic,
                relatives,
                attribution: None,
            }
        })
        .collect();
    cards.sort_by(|a, b| a.mare.partial_cmp(&b.mare).expect("finite MARE")); // gate: allow
    cards
}

/// Renders scorecards as a ranking table (best simulator first).
pub fn render_scorecards(cards: &[SimulatorScorecard]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<22}{:>8}{:>8}{:>12}",
        "simulator (best first)", "MARE", "worst", "optimistic"
    );
    for c in cards {
        let _ = writeln!(
            out,
            "{:<22}{:>8.2}{:>8.2}{:>11.0}%",
            c.sim,
            c.mare,
            c.worst,
            c.optimistic_fraction * 100.0
        );
        if let Some(attr) = &c.attribution {
            // Name the two largest per-class contributors inline so the
            // ranking table doubles as a diagnosis.
            let mut ranked: Vec<_> = attr.classes.iter().collect();
            ranked.sort_by(|a, b| {
                b.contribution
                    .abs()
                    .partial_cmp(&a.contribution.abs())
                    .expect("finite contribution") // gate: allow
            });
            let top: Vec<String> = ranked
                .iter()
                .take(2)
                .filter(|cc| cc.contribution != 0.0)
                .map(|cc| format!("{} {:+.1}pp", cc.class.key(), cc.contribution * 100.0))
                .collect();
            if !top.is_empty() {
                let _ = writeln!(
                    out,
                    "    attribution vs {}: {:+.1}% total ({})",
                    attr.ref_label,
                    attr.total_error * 100.0,
                    top.join(", ")
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::RelativePoint;

    #[test]
    fn mare_basics() {
        assert_eq!(mare(&[]), 0.0);
        assert!((mare(&[1.0, 1.0]) - 0.0).abs() < 1e-12);
        assert!((mare(&[0.8, 1.2]) - 0.2).abs() < 1e-12);
        assert!((mare(&[0.5]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn relative_error_direction() {
        assert!(RelativeError::new(0.7).optimistic());
        assert!(!RelativeError::new(1.3).optimistic());
        assert!((RelativeError::new(0.7).magnitude() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn kendall_tau_extremes() {
        let up = [1.0, 2.0, 3.0, 4.0];
        let down = [4.0, 3.0, 2.0, 1.0];
        assert!((kendall_tau(&up, &up) - 1.0).abs() < 1e-12);
        assert!((kendall_tau(&up, &down) + 1.0).abs() < 1e-12);
        let mixed = [1.0, 3.0, 2.0, 4.0];
        let tau = kendall_tau(&up, &mixed);
        assert!(tau > 0.0 && tau < 1.0);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn kendall_tau_rejects_mismatched_lengths() {
        kendall_tau(&[1.0, 2.0], &[1.0]);
    }

    #[test]
    fn trend_fidelity_perfect_and_scaled() {
        let hw = SpeedupCurve {
            platform: "hw".into(),
            points: vec![(1, 1.0), (2, 1.9), (4, 3.5), (8, 6.0)],
        };
        let perfect = trend_fidelity(&hw, &hw).unwrap();
        assert!(perfect.worst_error < 1e-12);
        assert!((perfect.tau - 1.0).abs() < 1e-12);

        let under = SpeedupCurve {
            platform: "sim".into(),
            points: vec![(1, 1.0), (2, 1.4), (4, 2.4), (8, 4.2)],
        };
        let t = trend_fidelity(&hw, &under).unwrap();
        assert!(t.worst_error > 0.25 && t.worst_error < 0.40);
        assert!((t.tau - 1.0).abs() < 1e-12, "still monotone => tau 1");
        assert_eq!(t.point_ratios.len(), 3);
    }

    #[test]
    fn trend_fidelity_needs_shared_points() {
        let hw = SpeedupCurve {
            platform: "hw".into(),
            points: vec![(1, 1.0), (16, 12.0)],
        };
        let sim = SpeedupCurve {
            platform: "sim".into(),
            points: vec![(1, 1.0), (8, 5.0)],
        };
        assert!(trend_fidelity(&hw, &sim).is_none());
    }

    #[test]
    fn scorecards_rank_by_mare() {
        let fig = RelativeFigure {
            title: "t".into(),
            nodes: 1,
            points: vec![
                RelativePoint::measured("FFT", "good".into(), 0.95),
                RelativePoint::measured("LU", "good".into(), 1.05),
                RelativePoint::measured("FFT", "bad".into(), 0.5),
                RelativePoint::measured("LU", "bad".into(), 1.6),
            ],
        };
        let cards = scorecards(&fig);
        assert_eq!(cards[0].sim, "good");
        assert!((cards[0].mare - 0.05).abs() < 1e-12);
        assert_eq!(cards[1].sim, "bad");
        assert!((cards[1].optimistic_fraction - 0.5).abs() < 1e-12);
        let rendered = render_scorecards(&cards);
        assert!(rendered.contains("good") && rendered.contains("MARE"));
    }

    #[test]
    fn render_scorecards_diagnoses_attributed_error() {
        use crate::attrib::{AttributionReport, ClassContribution};
        use flashsim_engine::StallClass;
        let classes = StallClass::ALL
            .into_iter()
            .map(|class| ClassContribution {
                class,
                sim_ps: 0,
                ref_ps: 0,
                contribution: match class {
                    StallClass::TlbRefill => -0.11,
                    StallClass::DirOccupancy => -0.05,
                    StallClass::NetTransit => -0.02,
                    _ => 0.0,
                },
            })
            .collect();
        let card = SimulatorScorecard {
            sim: "simos-mipsy".into(),
            relatives: vec![("FFT".into(), 0.82)],
            mare: 0.18,
            worst: 0.18,
            optimistic_fraction: 1.0,
            attribution: Some(AttributionReport {
                sim_label: "simos-mipsy".into(),
                ref_label: "hardware".into(),
                sim_total_ps: 820,
                ref_total_ps: 1000,
                total_error: -0.18,
                classes,
            }),
        };
        let text = render_scorecards(&[card]);
        assert!(text.contains("attribution vs hardware"));
        assert!(text.contains("tlb_refill -11.0pp"));
        assert!(text.contains("dir_occupancy -5.0pp"));
        assert!(!text.contains("net_transit"), "only the top two are shown");
    }

    #[test]
    fn scorecards_skip_failed_cells() {
        let fig = RelativeFigure {
            title: "t".into(),
            nodes: 1,
            points: vec![
                RelativePoint::measured("FFT", "partial".into(), 1.1),
                RelativePoint {
                    app: "LU",
                    sim: "partial".into(),
                    relative: f64::NAN,
                    error: Some("deadlock".into()),
                },
            ],
        };
        let cards = scorecards(&fig);
        assert_eq!(cards.len(), 1);
        assert_eq!(cards[0].relatives.len(), 1, "failed cell excluded");
        assert!(cards[0].mare.is_finite());
    }
}
