//! The named platforms of the study and their tuning state.
//!
//! The paper's figures put seven simulator configurations on the X axis —
//! SimOS-Mipsy at 150/225/300 MHz, SimOS-MXS, and Solo-Mipsy at
//! 150/225/300 MHz — and normalize everything against the FLASH hardware.
//! [`Sim`] names those columns; [`Study`] turns a column into a runnable
//! [`MachineConfig`], either *untuned* (the models' design-time state:
//! 25/35-cycle TLB refills, no L2-interface occupancy, untuned FlashLite)
//! or *tuned* with a [`Tuning`] produced by the calibration loop.

use flashsim_engine::TimeDelta;
use flashsim_flashlite::FlashLiteParams;
use flashsim_machine::{CpuModel, MachineConfig, MachineGeometry, MemSysKind};
use flashsim_numa::NumaParams;
use flashsim_os::OsModel;

/// A simulator configuration (one X-axis column of Figures 1–4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sim {
    /// SimOS environment, Mipsy processor at the given MHz.
    SimosMipsy(u32),
    /// SimOS environment, MXS processor (150 MHz).
    SimosMxs,
    /// Solo environment, Mipsy processor at the given MHz.
    SoloMipsy(u32),
}

impl Sim {
    /// The seven columns in the paper's figure order.
    pub fn figure_order() -> Vec<Sim> {
        vec![
            Sim::SimosMipsy(150),
            Sim::SimosMipsy(225),
            Sim::SimosMipsy(300),
            Sim::SimosMxs,
            Sim::SoloMipsy(150),
            Sim::SoloMipsy(225),
            Sim::SoloMipsy(300),
        ]
    }

    /// Display label matching the paper's axis labels.
    pub fn label(&self) -> String {
        match self {
            Sim::SimosMipsy(mhz) => format!("SimOS-Mipsy {mhz}MHz"),
            Sim::SimosMxs => "SimOS-MXS 150MHz".to_owned(),
            Sim::SoloMipsy(mhz) => format!("Solo-Mipsy {mhz}MHz"),
        }
    }
}

/// Which memory-system model a configuration uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemModel {
    /// The detailed FlashLite model (parameter set chosen by tuning state).
    FlashLite,
    /// The generic latency-only NUMA model.
    Numa,
}

/// The simulator parameters produced by the §3.1.2 calibration loop.
#[derive(Debug, Clone, PartialEq)]
pub struct Tuning {
    /// Calibrated TLB refill cost in CPU cycles (the paper finds 65).
    pub tlb_refill_cycles: u64,
    /// Calibrated Mipsy secondary-cache interface occupancy.
    pub mipsy_l2_iface: Option<TimeDelta>,
    /// Calibrated FlashLite timing parameters.
    pub flashlite: FlashLiteParams,
}

/// A study: one machine geometry plus helpers to build every platform.
#[derive(Debug, Clone)]
pub struct Study {
    /// The machine geometry all platforms share.
    pub geometry: MachineGeometry,
}

impl Study {
    /// A study over the scaled geometry (the default experiment setup).
    pub fn scaled() -> Study {
        Study {
            geometry: MachineGeometry::scaled(),
        }
    }

    /// A study over the full Table-1 geometry.
    pub fn full() -> Study {
        Study {
            geometry: MachineGeometry::flash(),
        }
    }

    /// The gold-standard FLASH "hardware": R10000 cores, IRIX, FlashLite
    /// with true parameters.
    pub fn hardware(&self, nodes: u32) -> MachineConfig {
        MachineConfig::new(
            nodes,
            CpuModel::R10000,
            OsModel::irix_hardware(),
            MemSysKind::FlashLite(FlashLiteParams::hardware()),
            self.geometry,
        )
    }

    /// A simulator configuration in its *untuned* (design-time) state.
    pub fn sim(&self, sim: Sim, nodes: u32, mem: MemModel) -> MachineConfig {
        self.sim_with(sim, nodes, mem, None)
    }

    /// A simulator configuration with calibrated `tuning` applied.
    pub fn sim_tuned(&self, sim: Sim, nodes: u32, mem: MemModel, tuning: &Tuning) -> MachineConfig {
        self.sim_with(sim, nodes, mem, Some(tuning))
    }

    fn sim_with(
        &self,
        sim: Sim,
        nodes: u32,
        mem: MemModel,
        tuning: Option<&Tuning>,
    ) -> MachineConfig {
        let cpu = match sim {
            Sim::SimosMipsy(mhz) | Sim::SoloMipsy(mhz) => CpuModel::Mipsy {
                mhz,
                model_int_latencies: false,
                l2_iface: tuning.and_then(|t| t.mipsy_l2_iface),
            },
            Sim::SimosMxs => CpuModel::Mxs,
        };
        let os = match sim {
            Sim::SoloMipsy(_) => OsModel::solo(),
            Sim::SimosMipsy(_) => match tuning {
                None => OsModel::simos_mipsy(),
                Some(t) => OsModel::simos_mipsy().with_tlb_refill(t.tlb_refill_cycles),
            },
            Sim::SimosMxs => match tuning {
                None => OsModel::simos_mxs(),
                Some(t) => OsModel::simos_mxs().with_tlb_refill(t.tlb_refill_cycles),
            },
        };
        let memsys = match mem {
            MemModel::FlashLite => MemSysKind::FlashLite(match tuning {
                None => FlashLiteParams::untuned(),
                Some(t) => t.flashlite,
            }),
            // NUMA's latencies were "known well in advance"; tuning does
            // not change them (the paper tunes FlashLite only).
            MemModel::Numa => MemSysKind::Numa(NumaParams::matched()),
        };
        MachineConfig::new(nodes, cpu, os, memsys, self.geometry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashsim_os::TlbModel;

    #[test]
    fn figure_order_has_seven_columns() {
        let order = Sim::figure_order();
        assert_eq!(order.len(), 7);
        assert_eq!(order[0].label(), "SimOS-Mipsy 150MHz");
        assert_eq!(order[3].label(), "SimOS-MXS 150MHz");
        assert_eq!(order[6].label(), "Solo-Mipsy 300MHz");
    }

    #[test]
    fn hardware_uses_golden_models() {
        let hw = Study::scaled().hardware(4);
        assert_eq!(hw.cpu, CpuModel::R10000);
        assert_eq!(hw.os.name, "irix");
        assert!(matches!(hw.memsys, MemSysKind::FlashLite(p) if p == FlashLiteParams::hardware()));
    }

    #[test]
    fn untuned_sims_carry_the_wrong_tlb_costs() {
        let study = Study::scaled();
        let mipsy = study.sim(Sim::SimosMipsy(150), 1, MemModel::FlashLite);
        match mipsy.os.tlb {
            TlbModel::Modeled { refill_cycles, .. } => assert_eq!(refill_cycles, 25),
            TlbModel::None => panic!(),
        }
        let mxs = study.sim(Sim::SimosMxs, 1, MemModel::FlashLite);
        match mxs.os.tlb {
            TlbModel::Modeled { refill_cycles, .. } => assert_eq!(refill_cycles, 35),
            TlbModel::None => panic!(),
        }
        let solo = study.sim(Sim::SoloMipsy(300), 1, MemModel::FlashLite);
        assert!(!solo.os.tlb.is_modeled());
    }

    #[test]
    fn tuning_applies_refill_iface_and_flashlite() {
        let study = Study::scaled();
        let tuning = Tuning {
            tlb_refill_cycles: 65,
            mipsy_l2_iface: Some(TimeDelta::from_ns(150)),
            flashlite: FlashLiteParams::hardware(),
        };
        let cfg = study.sim_tuned(Sim::SimosMipsy(225), 1, MemModel::FlashLite, &tuning);
        match cfg.os.tlb {
            TlbModel::Modeled { refill_cycles, .. } => assert_eq!(refill_cycles, 65),
            TlbModel::None => panic!(),
        }
        match cfg.cpu {
            CpuModel::Mipsy { l2_iface, .. } => {
                assert_eq!(l2_iface, Some(TimeDelta::from_ns(150)));
            }
            _ => panic!(),
        }
        assert!(matches!(cfg.memsys, MemSysKind::FlashLite(p) if p == FlashLiteParams::hardware()));
        // Solo stays TLB-less even tuned; MXS keeps its generic core.
        let solo = study.sim_tuned(Sim::SoloMipsy(150), 1, MemModel::FlashLite, &tuning);
        assert!(!solo.os.tlb.is_modeled());
    }

    #[test]
    fn numa_params_are_tuning_independent() {
        let study = Study::scaled();
        let tuning = Tuning {
            tlb_refill_cycles: 65,
            mipsy_l2_iface: None,
            flashlite: FlashLiteParams::hardware(),
        };
        let a = study.sim(Sim::SimosMipsy(225), 2, MemModel::Numa);
        let b = study.sim_tuned(Sim::SimosMipsy(225), 2, MemModel::Numa, &tuning);
        assert_eq!(a.memsys, b.memsys);
    }
}
