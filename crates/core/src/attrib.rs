//! Cross-platform error attribution: *where* a simulator's error comes
//! from, not just how large it is.
//!
//! The paper reports that its simulators are off by 30% or more and then
//! asks which mis-modelled mechanism is responsible (TLB refills the
//! processor models skip, MAGIC occupancy the NUMA model omits, network
//! contention, ...). This module answers that question mechanically: run
//! the same program on two platforms with a cycle-accounting
//! [`Profiler`] attached, and [`attribute`] decomposes the total relative
//! error into signed per-class contributions — "18% optimistic, of which
//! 11 points TLB, 5 occupancy, 2 network".
//!
//! Because each [`Accounting`] is exactly conserved (per-node class
//! totals sum to the node's total time), the per-class contributions sum
//! to the total relative error *by construction*; [`AttributionReport::
//! residual`] exposes the (floating-point-only) difference, which is
//! bounded by a few ulps.

use crate::machine::{Machine, MachineConfig, RunResult, SimError};
use flashsim_engine::{Accounting, Profiler, StallClass};
use flashsim_isa::Program;
use std::fmt::Write as _;

/// One stall class's share of the error between two platforms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassContribution {
    /// The stall class.
    pub class: StallClass,
    /// Picoseconds the simulated platform charged to the class.
    pub sim_ps: u64,
    /// Picoseconds the reference platform charged to the class.
    pub ref_ps: u64,
    /// Signed contribution to the total relative error:
    /// `(sim_ps − ref_ps) / ref_total_ps`. Negative = the simulator
    /// under-accounts this class (a source of optimism).
    pub contribution: f64,
}

/// A per-class decomposition of one platform's error against a reference
/// (normally the gold-standard hardware model) on an identically seeded
/// run.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributionReport {
    /// Label of the platform being judged.
    pub sim_label: String,
    /// Label of the reference platform.
    pub ref_label: String,
    /// Total accounted picoseconds on the judged platform.
    pub sim_total_ps: u64,
    /// Total accounted picoseconds on the reference platform.
    pub ref_total_ps: u64,
    /// Total relative error, `(sim − ref) / ref`. Negative = optimistic.
    pub total_error: f64,
    /// Per-class contributions in [`StallClass::ALL`] order; they sum to
    /// `total_error` up to floating-point rounding.
    pub classes: Vec<ClassContribution>,
}

impl AttributionReport {
    /// `total_error` minus the sum of per-class contributions. Exact
    /// conservation of both accountings makes this pure floating-point
    /// noise (well under `1e-9` for any realistic run); a larger residual
    /// means an accounting was not conserved.
    pub fn residual(&self) -> f64 {
        self.total_error - self.classes.iter().map(|c| c.contribution).sum::<f64>()
    }

    /// True if the judged platform predicts a shorter time than the
    /// reference.
    pub fn optimistic(&self) -> bool {
        self.total_error < 0.0
    }

    /// Renders the paper-style attribution table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "error attribution: {} vs {}",
            self.sim_label, self.ref_label
        );
        let direction = if self.optimistic() {
            "optimistic"
        } else {
            "pessimistic"
        };
        let _ = writeln!(
            out,
            "  total: sim {:.3}ms vs ref {:.3}ms => {:.1}% {}",
            self.sim_total_ps as f64 / 1e9,
            self.ref_total_ps as f64 / 1e9,
            self.total_error.abs() * 100.0,
            direction
        );
        let _ = writeln!(
            out,
            "  {:<16}{:>12}{:>12}{:>14}",
            "class", "sim(ms)", "ref(ms)", "contribution"
        );
        for c in &self.classes {
            let _ = writeln!(
                out,
                "  {:<16}{:>12.3}{:>12.3}{:>+13.2}pp",
                c.class.key(),
                c.sim_ps as f64 / 1e9,
                c.ref_ps as f64 / 1e9,
                c.contribution * 100.0
            );
        }
        let _ = writeln!(
            out,
            "  contributions sum to {:+.2}pp (residual {:.1e})",
            (self.total_error - self.residual()) * 100.0,
            self.residual()
        );
        out
    }

    /// CSV export: `class,sim_ps,ref_ps,contribution`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("class,sim_ps,ref_ps,contribution\n");
        for c in &self.classes {
            let _ = writeln!(
                out,
                "{},{},{},{:.9}",
                c.class.key(),
                c.sim_ps,
                c.ref_ps,
                c.contribution
            );
        }
        out
    }
}

/// Decomposes the relative error of `sim` against `reference` into signed
/// per-class contributions.
///
/// Both accountings should come from identically seeded runs of the same
/// program so the comparison is apples-to-apples (same op streams, same
/// sharing pattern). With both sides conserved, the contributions sum to
/// the total relative error exactly (modulo f64 rounding).
pub fn attribute(
    sim: &Accounting,
    sim_label: &str,
    reference: &Accounting,
    ref_label: &str,
) -> AttributionReport {
    let sim_totals = sim.class_totals();
    let ref_totals = reference.class_totals();
    let sim_total = sim.total_ps();
    let ref_total = reference.total_ps();
    let denom = if ref_total == 0 {
        1.0
    } else {
        ref_total as f64
    };
    let classes = StallClass::ALL
        .into_iter()
        .map(|class| {
            let sim_ps = sim_totals[class as usize];
            let ref_ps = ref_totals[class as usize];
            ClassContribution {
                class,
                sim_ps,
                ref_ps,
                // Signed difference via f64: the two u64s may be far
                // apart in either direction.
                contribution: (sim_ps as f64 - ref_ps as f64) / denom,
            }
        })
        .collect();
    AttributionReport {
        sim_label: sim_label.to_owned(),
        ref_label: ref_label.to_owned(),
        sim_total_ps: sim_total,
        ref_total_ps: ref_total,
        total_error: (sim_total as f64 - ref_total as f64) / denom,
        classes,
    }
}

/// Builds and runs `program` under `cfg` with a cycle-accounting profiler
/// attached, so `result.accounting` is populated.
///
/// # Errors
///
/// Propagates every structured failure from [`Machine::run`].
pub fn run_profiled(cfg: MachineConfig, program: &dyn Program) -> Result<RunResult, SimError> {
    let mut machine = Machine::new(cfg, program)?;
    machine.attach_profiler(Profiler::new());
    machine.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashsim_engine::{Time, TimeDelta};

    /// A synthetic conserved accounting: charge known spans, snapshot.
    fn acct(charges: &[(StallClass, u64)], end_ns: u64) -> Accounting {
        let p = Profiler::new();
        let mut at = Time::ZERO;
        for &(class, ns) in charges {
            p.charge_wall(0, class, at, TimeDelta::from_ns(ns));
            at += TimeDelta::from_ns(ns);
        }
        let a = p
            .snapshot(&[Time::from_ns(end_ns)])
            .expect("enabled profiler");
        assert!(a.conserved());
        a
    }

    #[test]
    fn contributions_sum_to_total_error() {
        let hw = acct(
            &[
                (StallClass::TlbRefill, 300),
                (StallClass::DirOccupancy, 200),
                (StallClass::NetTransit, 100),
            ],
            1000,
        );
        let sim = acct(&[(StallClass::DirOccupancy, 50)], 820);
        let rep = attribute(&sim, "sim", &hw, "hw");
        assert!(rep.optimistic());
        assert!((rep.total_error - (820.0 - 1000.0) / 1000.0).abs() < 1e-12);
        assert!(rep.residual().abs() < 1e-9, "residual {}", rep.residual());
        // The TLB class alone explains 30 points of the error.
        let tlb = &rep.classes[StallClass::TlbRefill as usize];
        assert!((tlb.contribution - (-0.3)).abs() < 1e-12);
    }

    #[test]
    fn pessimistic_direction_and_render() {
        let hw = acct(&[(StallClass::L2Miss, 100)], 500);
        let sim = acct(&[(StallClass::L2Miss, 400)], 800);
        let rep = attribute(&sim, "slow-sim", &hw, "gold");
        assert!(!rep.optimistic());
        assert!((rep.total_error - 0.6).abs() < 1e-12);
        let text = rep.render();
        assert!(text.contains("slow-sim"));
        assert!(text.contains("pessimistic"));
        assert!(text.contains("l2_miss"));
        let csv = rep.to_csv();
        assert!(csv.starts_with("class,sim_ps,ref_ps,contribution\n"));
        assert_eq!(csv.lines().count(), 1 + StallClass::COUNT);
    }

    #[test]
    fn empty_reference_does_not_divide_by_zero() {
        let hw = acct(&[], 0);
        let sim = acct(&[(StallClass::Compute, 10)], 10);
        let rep = attribute(&sim, "sim", &hw, "hw");
        assert!(rep.total_error.is_finite());
        assert!(rep.residual().abs() < 1e-9);
    }
}
