//! `flashsim-core` — the paper's contribution: the simulator-validation
//! methodology of *FLASH vs. (Simulated) FLASH: Closing the Simulation
//! Loop* (ASPLOS 2000).
//!
//! Everything below this crate is machinery (processor models, memory
//! systems, workloads); this crate is the loop itself:
//!
//! 1. **Platforms** ([`platform`]): the gold-standard "hardware" and the
//!    seven simulator configurations of the paper's figures, in untuned
//!    (design-time) and tuned states.
//! 2. **Measurement** ([`runner`]): averaged hardware runs (≥5 with
//!    seeded jitter, as the paper averages real runs), relative execution
//!    time, speedup, and a *supervised* parallel run-matrix executor:
//!    each cell runs under `catch_unwind` with a watchdog budget, and a
//!    failed cell becomes a structured [`CellOutcome::Failed`] while the
//!    rest of the matrix completes.
//! 3. **Calibration** ([`mod@calibrate`]): the §3.1.2 tuning loop —
//!    microbenchmarks measure the gold standard (TLB refill cost, the
//!    five Table-3 protocol-case latencies, secondary-cache interface
//!    occupancy) and coordinate descent adjusts the simulators until they
//!    match. This is "closing the simulation loop".
//! 4. **Experiments** ([`figures`], [`report`]): the exact matrices
//!    behind Figures 1–7, Tables 1–3, and the §3.1.3 instruction-latency
//!    ablation, plus text rendering and the paper's published numbers.
//! 5. **Divergence diffing** ([`diverge`]): replays two platforms'
//!    flight-recorder event streams side by side, locating the first
//!    event where the models disagree and the per-category count deltas.
//! 6. **Error attribution** ([`attrib`]): decomposes a simulator's total
//!    relative error against the gold standard into signed per-stall-class
//!    contributions using the cycle-accounting profiler — "18% optimistic,
//!    of which 11 points TLB, 5 occupancy, 2 network".
//!
//! # Examples
//!
//! Reproducing Table 3 end to end:
//!
//! ```no_run
//! use flashsim_core::{calibrate, platform::Study, report};
//!
//! let study = Study::scaled();
//! let cal = calibrate::calibrate(&study);
//! println!("{}", report::render_table3(&cal));
//! assert!((55..=80).contains(&cal.tuning.tlb_refill_cycles)); // paper: 65
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attrib;
pub mod calibrate;
pub mod diverge;
pub mod figures;
pub mod journal;
pub mod metrics;
pub mod platform;
pub mod report;
pub mod runner;

pub use attrib::{attribute, run_profiled, AttributionReport, ClassContribution};
pub use calibrate::{calibrate, Calibration, Table3Row, TlbCalibration};
pub use diverge::{diff_traces, CategoryDelta, Divergence, DivergenceReport};
pub use figures::{
    apps_tuned, apps_untuned, fig1, fig2, fig3, fig4, fig5, fig6, fig7, latency_ablation,
    RelativeFigure, RelativePoint, SpeedupCurve, SpeedupFigure, SPEEDUP_COUNTS,
};
pub use journal::{cell_identity, render_artifacts, run_matrix_journaled, CellReport, ResumeNote};
pub use metrics::{
    kendall_tau, mare, render_scorecards, scorecards, trend_fidelity, RelativeError,
    SimulatorScorecard, TrendFidelity,
};
pub use platform::{MemModel, Sim, Study, Tuning};
pub use report::{
    relative_to_csv, render_relative, render_speedup, render_table1, render_table3, speedup_to_csv,
};
pub use runner::{
    parallel_map, relative_time, run_hardware, run_matrix, run_once, run_supervised, speedup,
    CellOutcome, HardwareMeasurement, MatrixCell, HARDWARE_JITTER, HARDWARE_RUNS,
};

// Re-export the layers below for umbrella users.
pub use flashsim_engine as engine;
pub use flashsim_flashlite as flashlite;
pub use flashsim_isa as isa;
pub use flashsim_machine as machine;
pub use flashsim_mem as mem;
pub use flashsim_numa as numa;
pub use flashsim_os as os;
pub use flashsim_workloads as workloads;
