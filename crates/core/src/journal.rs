//! Crash-consistent run journaling: every long matrix becomes resumable.
//!
//! A large experiment matrix (hundreds of supervised cells, hours of host
//! time) historically had all-or-nothing durability: kill the process and
//! every finished cell's work evaporated. [`run_matrix_journaled`] closes
//! that gap with two pieces of on-disk state, both written so that a kill
//! at *any* instant leaves a resumable directory:
//!
//! - an **append-only journal** (`journal.log`): one line per event —
//!   `start <cell> <identity-hash>` when a cell begins, `ckpt <cell>
//!   <seq> <barrier-ps>` after a checkpoint file is durably renamed into
//!   place, `finish <cell> <kind>` after the cell's artifacts file is
//!   durable. Lines are appended and flushed one at a time, so the only
//!   possible damage from a crash is a torn final line, which the parser
//!   tolerates by construction.
//! - **side files** written temp-then-rename: `cell<i>.ckpt-<seq>`
//!   (a `flashsim-ckpt-v1` machine snapshot emitted at a barrier release)
//!   and `cell<i>.artifacts` (the canonical result rendering). Because
//!   the journal only mentions a file *after* its rename, a journal entry
//!   is a promise the file exists and is complete.
//!
//! On re-entry into the same directory, finished cells are skipped
//! outright, mid-run cells are restored from their newest valid
//! checkpoint (walking back to older ones if the newest is damaged), and
//! a cell with no usable checkpoint restarts from zero with the reason
//! recorded — the matrix *converges* rather than failing. Restored cells
//! finish byte-identical to an uninterrupted run, which is what lets the
//! chaos harness assert kill-and-resume equivalence at the file level.
//!
//! Every journaled cell also writes a live `flashsim-stream-v1` event
//! file (`cell<i>.stream`) so a `watch` supervisor can follow progress
//! from outside the process. On resume the file is trimmed back to the
//! prefix the restored checkpoint is consistent with before the machine
//! re-opens it in append mode, so a converged cell's deterministic
//! stream events equal an uninterrupted run's byte for byte (advisory
//! `progress` lines are wall-clock-driven and excluded).

use crate::runner::{failed_manifest, parallel_map, supervise, CellOutcome, MatrixCell};
use flashsim_engine::{ckpt, stream};
use flashsim_isa::Program;
use flashsim_machine::{Machine, MachineConfig, RestoreError};
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// First line of every run journal.
pub const JOURNAL_MAGIC: &str = "flashsim-journal-v1";
/// First line of every artifacts file.
pub const ARTIFACTS_MAGIC: &str = "flashsim-artifacts-v1";

/// Path of the journal inside a run directory.
pub fn journal_path(dir: &Path) -> PathBuf {
    dir.join("journal.log")
}

/// Path of cell `idx`'s artifacts file inside a run directory.
pub fn artifacts_path(dir: &Path, idx: usize) -> PathBuf {
    dir.join(format!("cell{idx}.artifacts"))
}

/// Path of cell `idx`'s checkpoint `seq` inside a run directory.
pub fn ckpt_path(dir: &Path, idx: usize, seq: u64) -> PathBuf {
    dir.join(format!("cell{idx}.ckpt-{seq}"))
}

/// Path of cell `idx`'s live `flashsim-stream-v1` event file inside a
/// run directory.
pub fn stream_path(dir: &Path, idx: usize) -> PathBuf {
    dir.join(format!("cell{idx}.stream"))
}

/// Path of cell `idx`'s host-time self-profile (`flashsim-hostprof-v1`
/// JSONL) inside a run directory. Written only when the cell ran with
/// [`MachineConfig::hostprof`] enabled; host wall-clock numbers vary
/// run to run, so the profile is a side file and deliberately never
/// part of the deterministic artifacts.
pub fn hostprof_path(dir: &Path, idx: usize) -> PathBuf {
    dir.join(format!("cell{idx}.hostprof"))
}

/// The stable identity hash of one matrix cell — everything that shapes
/// its simulated behaviour, including a fingerprint of the workload's
/// actual op streams (names and seeds alone can collide across workload
/// parameterizations). Recorded on the journal's `start` line so a
/// resume against an edited matrix re-runs the changed cells instead of
/// splicing their old state in.
pub fn cell_identity(cfg: &MachineConfig, program: &dyn Program) -> String {
    ckpt::provenance_hash(&format!(
        "{}|{}|{}|{:?}|{:016x}|{}|{:?}|{:?}|{:?}|{}",
        cfg.label(),
        program.name(),
        program.num_threads(),
        program.seed(),
        program.fingerprint(),
        cfg.sched.key(),
        cfg.faults,
        cfg.telemetry,
        cfg.spans,
        cfg.profile,
    ))
}

/// How a journaled cell's work came to be this invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResumeNote {
    /// No prior journal state: the cell ran from scratch.
    Fresh,
    /// A prior invocation finished this cell; its artifacts were reused
    /// and nothing was re-run.
    SkippedFinished,
    /// The cell was restored from checkpoint `seq` (taken at simulated
    /// time `barrier_ps`) and run to completion from there.
    Resumed {
        /// Checkpoint sequence number the cell resumed from.
        seq: u64,
        /// Simulated barrier-release time (ps) of that checkpoint.
        barrier_ps: u64,
    },
    /// Prior state existed but no checkpoint was usable (corrupt,
    /// truncated, or from a different run identity); the cell restarted
    /// from zero. This is the graceful-degradation path: the matrix still
    /// converges, just with less work saved.
    RestartedFromZero {
        /// Why the newest rejected checkpoint was unusable.
        reason: String,
    },
}

impl fmt::Display for ResumeNote {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResumeNote::Fresh => write!(f, "fresh"),
            ResumeNote::SkippedFinished => write!(f, "skipped (already finished)"),
            ResumeNote::Resumed { seq, barrier_ps } => {
                write!(f, "resumed from ckpt {seq} at {barrier_ps} ps")
            }
            ResumeNote::RestartedFromZero { reason } => {
                write!(f, "restarted from zero ({reason})")
            }
        }
    }
}

/// One cell's report from a journaled matrix run.
#[derive(Debug)]
pub struct CellReport {
    /// Cell index in the input matrix.
    pub index: usize,
    /// How this invocation obtained the cell's result.
    pub resume: ResumeNote,
    /// The outcome, if the cell actually ran this invocation; `None` for
    /// cells skipped as already finished (their result lives in the
    /// artifacts file).
    pub outcome: Option<CellOutcome>,
    /// Path of the cell's durable artifacts file.
    pub artifacts: PathBuf,
}

/// Prior journal state for one cell.
#[derive(Debug, Default, Clone)]
struct Prior {
    /// Identity hash from the cell's most recent `start` line.
    hash: Option<String>,
    /// `(seq, barrier_ps)` of every durably recorded checkpoint.
    ckpts: Vec<(u64, u64)>,
    /// Outcome kind from a `finish` line, if the cell ever finished.
    finished: Option<String>,
}

/// Parses a journal, tolerating the torn final line a crash can leave.
/// Unknown or malformed lines are skipped — the journal is advisory
/// state whose every claim is re-verified against the files it names.
fn parse_journal(text: &str, cells: usize) -> Vec<Prior> {
    let mut prior = vec![Prior::default(); cells];
    let mut lines: Vec<&str> = text.split('\n').collect();
    // The final element is either the empty tail after a trailing
    // newline or a torn half-written line; neither is usable.
    lines.pop();
    let mut it = lines.into_iter();
    if it.next() != Some(JOURNAL_MAGIC) {
        return prior;
    }
    for line in it {
        let mut f = line.split_ascii_whitespace();
        let (Some(tag), Some(idx)) = (f.next(), f.next().and_then(|s| s.parse::<usize>().ok()))
        else {
            continue;
        };
        if idx >= cells {
            continue;
        }
        match tag {
            "start" => {
                if let Some(h) = f.next() {
                    prior[idx].hash = Some(h.to_owned());
                    // A new start supersedes any earlier finish; recorded
                    // checkpoints stay usable (restore re-verifies them).
                    prior[idx].finished = None;
                }
            }
            "ckpt" => {
                if let (Some(seq), Some(ps)) = (
                    f.next().and_then(|s| s.parse::<u64>().ok()),
                    f.next().and_then(|s| s.parse::<u64>().ok()),
                ) {
                    prior[idx].ckpts.push((seq, ps));
                }
            }
            "finish" => {
                if let Some(kind) = f.next() {
                    prior[idx].finished = Some(kind.to_owned());
                }
            }
            _ => {}
        }
    }
    prior
}

/// Writes `text` to `path` via a temp file and an atomic rename, so a
/// crash mid-write can never leave a half-written file under the final
/// name.
fn write_atomic(path: &Path, text: &str) -> std::io::Result<()> {
    let mut tmp_name = path.as_os_str().to_owned();
    tmp_name.push(".tmp");
    let tmp = PathBuf::from(tmp_name);
    fs::write(&tmp, text)?;
    fs::rename(&tmp, path)
}

/// The shared append-only journal handle. Appends are best-effort: a
/// failed append costs future resumability, never current correctness.
struct Journal {
    file: Mutex<fs::File>,
}

impl Journal {
    fn append(&self, line: &str) {
        if let Ok(mut f) = self.file.lock() {
            let _ = writeln!(f, "{line}");
            let _ = f.flush();
        }
    }
}

/// Renders a cell outcome into the canonical `flashsim-artifacts-v1`
/// text: result summary, statistics, accounting, telemetry JSONL, and
/// span JSONL. Every field is simulation-deterministic (host throughput
/// numbers are deliberately excluded), so an interrupted-then-resumed
/// cell's artifacts are byte-identical to an uninterrupted run's.
pub fn render_artifacts(outcome: &CellOutcome) -> String {
    let mut out = String::new();
    out.push_str(ARTIFACTS_MAGIC);
    out.push('\n');
    match outcome {
        CellOutcome::Completed(r) => {
            out.push_str("[result]\nkind=ok\n");
            out.push_str(&format!("workload={}\n", r.manifest.workload));
            out.push_str(&format!("config={}\n", r.manifest.config));
            out.push_str(&format!("total_ps={}\n", r.total_time.as_ps()));
            out.push_str(&format!("parallel_ps={}\n", r.parallel_time.as_ps()));
            let ops: Vec<String> = r.ops_per_node.iter().map(u64::to_string).collect();
            out.push_str(&format!("ops_per_node={}\n", ops.join(",")));
            let rels: Vec<String> = r
                .barrier_releases
                .iter()
                .map(|(id, t)| format!("{id}:{}", t.as_ps()))
                .collect();
            out.push_str(&format!("barriers={}\n", rels.join(",")));
            out.push_str("[stats]\n");
            out.push_str(&r.stats.to_json());
            out.push('\n');
            out.push_str("[accounting]\n");
            match &r.accounting {
                Some(acc) => out.push_str(&acc.to_json()),
                None => out.push_str("none"),
            }
            out.push('\n');
            out.push_str("[telemetry]\n");
            match &r.telemetry {
                Some(t) => out.push_str(&t.to_jsonl()),
                None => out.push_str("none\n"),
            }
            out.push_str("[spans]\n");
            match &r.spans {
                Some(s) => out.push_str(&s.to_jsonl()),
                None => out.push_str("none\n"),
            }
        }
        CellOutcome::Failed { error, manifest } => {
            out.push_str("[result]\n");
            out.push_str(&format!("kind={}\n", error.kind()));
            out.push_str(&format!("workload={}\n", manifest.workload));
            out.push_str(&format!("config={}\n", manifest.config));
            out.push_str(&format!(
                "error={}\n",
                format!("{error}").replace('\n', "\\n")
            ));
        }
    }
    out
}

/// Runs an experiment matrix with a crash-consistent journal in `dir`:
/// the supervised semantics of [`crate::runner::run_matrix`], plus
/// durable per-cell checkpoints at every barrier release and resumability
/// after a kill. Re-invoking on the same directory skips finished cells,
/// restores mid-run cells from their newest valid checkpoint, and
/// restarts cells whose checkpoints were damaged — recording which of
/// those happened in each [`CellReport::resume`].
///
/// `budget` is the same per-cell watchdog op budget as `run_matrix`,
/// applied only to cells whose own watchdog is unbounded (a configured
/// wall-clock limit is preserved).
///
/// # Errors
///
/// Only directory/journal *setup* failures surface as `Err`; per-cell
/// I/O problems degrade to fewer resume points, and per-cell simulation
/// failures are [`CellOutcome::Failed`] like any supervised run.
pub fn run_matrix_journaled(
    cells: Vec<MatrixCell>,
    budget: Option<u64>,
    dir: &Path,
) -> std::io::Result<Vec<CellReport>> {
    fs::create_dir_all(dir)?;
    let jpath = journal_path(dir);
    let prior_text = fs::read_to_string(&jpath).unwrap_or_default();
    let fresh_journal = !prior_text.starts_with(JOURNAL_MAGIC);
    let prior = parse_journal(&prior_text, cells.len());
    let mut opts = fs::OpenOptions::new();
    opts.create(true).write(true);
    if fresh_journal {
        opts.truncate(true);
    } else {
        opts.append(true);
    }
    let mut file = opts.open(&jpath)?;
    if fresh_journal {
        writeln!(file, "{JOURNAL_MAGIC}")?;
        file.flush()?;
    }
    let journal = Arc::new(Journal {
        file: Mutex::new(file),
    });

    let jobs: Vec<(usize, MatrixCell, Prior)> = cells
        .into_iter()
        .zip(prior)
        .enumerate()
        .map(|(idx, (cell, p))| (idx, cell, p))
        .collect();

    Ok(parallel_map(jobs, |(idx, (mut cfg, prog), prior)| {
        if cfg.watchdog.max_ops.is_none() {
            if let Some(b) = budget {
                cfg.watchdog.max_ops = Some(b);
            }
        }
        cfg.stream = Some(stream_path(dir, idx));
        let apath = artifacts_path(dir, idx);
        let expected = cell_identity(&cfg, prog.as_ref());
        let identity_matches = prior.hash.as_deref() == Some(expected.as_str());
        if prior.finished.is_some() && identity_matches && apath.exists() {
            return CellReport {
                index: idx,
                resume: ResumeNote::SkippedFinished,
                outcome: None,
                artifacts: apath,
            };
        }
        // Hunt for the newest usable checkpoint, walking back through
        // older ones when the newest is corrupt or truncated.
        let mut resume = ResumeNote::Fresh;
        let mut machine: Option<Machine> = None;
        if identity_matches && !prior.ckpts.is_empty() {
            let mut rejected: Option<String> = None;
            let mut ckpts = prior.ckpts.clone();
            ckpts.sort_unstable();
            ckpts.dedup();
            for &(seq, ps) in ckpts.iter().rev() {
                let attempt = fs::read_to_string(ckpt_path(dir, idx, seq))
                    .map_err(|e| e.to_string())
                    .and_then(|text| {
                        ckpt::validate(&text).map_err(|e| RestoreError::Ckpt(e).to_string())?;
                        Machine::restore(cfg.clone(), prog.as_ref(), &text)
                            .map_err(|e| e.to_string())
                    });
                match attempt {
                    Ok(m) => {
                        machine = Some(m);
                        resume = ResumeNote::Resumed {
                            seq,
                            barrier_ps: ps,
                        };
                        break;
                    }
                    Err(e) => {
                        if rejected.is_none() {
                            rejected = Some(e);
                        }
                    }
                }
            }
            if machine.is_none() {
                if let Some(reason) = rejected {
                    resume = ResumeNote::RestartedFromZero { reason };
                }
            }
        } else if prior.hash.is_some() && !identity_matches {
            resume = ResumeNote::RestartedFromZero {
                reason: "journal identity mismatch".to_owned(),
            };
        }
        // A restored machine re-opens its stream file in append mode, so
        // first trim the file back to the prefix the checkpoint is
        // consistent with: a crash can leave stream events emitted after
        // the newest durable checkpoint, and the resumed emitter will
        // re-emit exactly those. (A restart from zero re-creates the
        // file, which truncates on its own.)
        if let Some(m) = &machine {
            let spath = stream_path(dir, idx);
            if let Ok(text) = fs::read_to_string(&spath) {
                let trimmed = stream::consistent_prefix(&text, m.stream_position().0);
                let _ = write_atomic(&spath, &trimmed);
            }
        }
        journal.append(&format!("start {idx} {expected}"));
        let manifest = Box::new(failed_manifest(&cfg, prog.as_ref()));
        let sink_dir = dir.to_path_buf();
        let sink_journal = Arc::clone(&journal);
        let outcome = supervise(manifest, move || {
            let mut m = match machine {
                Some(m) => m,
                None => Machine::new(cfg, prog.as_ref())?,
            };
            m.attach_ckpt_sink(Box::new(move |seq, at, text| {
                // Journal the checkpoint only once its file is durably in
                // place; a failed write just forfeits one resume point.
                let path = ckpt_path(&sink_dir, idx, seq);
                if write_atomic(&path, text).is_ok() {
                    sink_journal.append(&format!("ckpt {idx} {seq} {}", at.as_ps()));
                }
            }));
            m.run()
        });
        let kind = outcome.error().map_or("ok", |e| e.kind());
        let _ = write_atomic(&apath, &render_artifacts(&outcome));
        if let CellOutcome::Completed(r) = &outcome {
            if let Some(host) = &r.hostprof {
                let _ = write_atomic(&hostprof_path(dir, idx), &host.to_jsonl());
            }
        }
        journal.append(&format!("finish {idx} {kind}"));
        CellReport {
            index: idx,
            resume,
            outcome: Some(outcome),
            artifacts: apath,
        }
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Study;
    use flashsim_workloads::micro::RestartProbe;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("flashsim-journal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn small_cells() -> Vec<MatrixCell> {
        let study = Study::scaled();
        vec![
            (
                study.hardware(1),
                Arc::new(RestartProbe::new(2_000)) as Arc<dyn Program>,
            ),
            (
                study.hardware(1),
                Arc::new(RestartProbe::new(3_000)) as Arc<dyn Program>,
            ),
        ]
    }

    #[test]
    fn journaled_matrix_writes_journal_and_artifacts() {
        let dir = tmpdir("fresh");
        let reports = run_matrix_journaled(small_cells(), Some(10_000_000), &dir).unwrap();
        assert_eq!(reports.len(), 2);
        for r in &reports {
            assert_eq!(r.resume, ResumeNote::Fresh);
            assert!(r.outcome.as_ref().is_some_and(CellOutcome::is_completed));
            let text = fs::read_to_string(&r.artifacts).unwrap();
            assert!(text.starts_with(ARTIFACTS_MAGIC));
            assert!(text.contains("kind=ok"));
            assert!(text.contains("[stats]"));
        }
        let journal = fs::read_to_string(journal_path(&dir)).unwrap();
        assert!(journal.starts_with(JOURNAL_MAGIC));
        assert!(journal.contains("start 0 ") && journal.contains("start 1 "));
        assert!(journal.contains("finish 0 ok") && journal.contains("finish 1 ok"));
        for idx in 0..2 {
            let text = fs::read_to_string(stream_path(&dir, idx)).unwrap();
            stream::validate_jsonl(&text).unwrap();
            assert!(
                text.contains("\"ev\":\"end\"") && text.contains("\"kind\":\"ok\""),
                "journaled cell stream must terminate cleanly"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn finished_cells_are_skipped_on_resume() {
        let dir = tmpdir("skip");
        run_matrix_journaled(small_cells(), Some(10_000_000), &dir).unwrap();
        let before = fs::read_to_string(artifacts_path(&dir, 0)).unwrap();
        let again = run_matrix_journaled(small_cells(), Some(10_000_000), &dir).unwrap();
        for r in &again {
            assert_eq!(r.resume, ResumeNote::SkippedFinished);
            assert!(r.outcome.is_none());
        }
        assert_eq!(
            fs::read_to_string(artifacts_path(&dir, 0)).unwrap(),
            before,
            "skipped cells must not rewrite artifacts"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn edited_cell_identity_forces_a_rerun() {
        let dir = tmpdir("identity");
        run_matrix_journaled(small_cells(), Some(10_000_000), &dir).unwrap();
        // Same directory, different workload length => new identity.
        let study = Study::scaled();
        let edited: Vec<MatrixCell> = vec![
            (
                study.hardware(1),
                Arc::new(RestartProbe::new(2_500)) as Arc<dyn Program>,
            ),
            (
                study.hardware(1),
                Arc::new(RestartProbe::new(3_000)) as Arc<dyn Program>,
            ),
        ];
        let reports = run_matrix_journaled(edited, Some(10_000_000), &dir).unwrap();
        assert!(matches!(
            reports[0].resume,
            ResumeNote::RestartedFromZero { .. }
        ));
        assert!(reports[0].outcome.is_some());
        assert_eq!(reports[1].resume, ResumeNote::SkippedFinished);
        let _ = fs::remove_dir_all(&dir);
    }

    /// One 2-node FFT cell: multi-barrier, so it emits several
    /// checkpoints per run. Telemetry and profiling are on so the
    /// stream's bucket values and per-class accounting deltas are
    /// exercised by the kill/resume byte-compare, not just the bare
    /// protocol framing.
    fn fft_cells() -> Vec<MatrixCell> {
        use flashsim_workloads::{Fft, FftBlocking};
        let study = Study::scaled();
        let mut cfg = study.hardware(2);
        cfg.telemetry = Some(flashsim_engine::TimeDelta::from_us(1));
        cfg.profile = true;
        vec![(
            cfg,
            Arc::new(Fft::new(1 << 10, 2, FftBlocking::Tlb)) as Arc<dyn Program>,
        )]
    }

    /// Forges a directory that looks exactly like a run killed after
    /// `keep` checkpoints: header, `start`, the first `keep` `ckpt`
    /// lines (copied verbatim from a straight run's journal), a torn
    /// tail, and the checkpoint files themselves.
    fn forge_crash_dir(tag: &str, gold_dir: &Path, keep: u64) -> PathBuf {
        let dir = tmpdir(tag);
        fs::create_dir_all(&dir).unwrap();
        for seq in 0..keep {
            fs::copy(ckpt_path(gold_dir, 0, seq), ckpt_path(&dir, 0, seq)).unwrap();
        }
        // The kill left the cell's full stream on disk — the emitter ran
        // ahead of the durable checkpoint. Resume must trim it back to
        // the consistent prefix and then converge to the gold bytes.
        fs::copy(stream_path(gold_dir, 0), stream_path(&dir, 0)).unwrap();
        let gold_journal = fs::read_to_string(journal_path(gold_dir)).unwrap();
        let mut journal = String::new();
        for line in gold_journal.lines() {
            let is_ckpt = line.starts_with("ckpt 0 ");
            if line == JOURNAL_MAGIC || line.starts_with("start 0 ") || is_ckpt {
                let seq_ok = !is_ckpt
                    || line
                        .split_ascii_whitespace()
                        .nth(2)
                        .and_then(|s| s.parse::<u64>().ok())
                        .is_some_and(|s| s < keep);
                if seq_ok {
                    journal.push_str(line);
                    journal.push('\n');
                }
            }
        }
        journal.push_str("finish 0 o"); // torn final line, no newline
        fs::write(journal_path(&dir), journal).unwrap();
        dir
    }

    #[test]
    fn kill_and_resume_converges_byte_identical() {
        let gold_dir = tmpdir("gold");
        let gold = run_matrix_journaled(fft_cells(), Some(100_000_000), &gold_dir).unwrap();
        assert!(gold[0]
            .outcome
            .as_ref()
            .is_some_and(CellOutcome::is_completed));
        let gold_bytes = fs::read_to_string(artifacts_path(&gold_dir, 0)).unwrap();
        let gold_stream = fs::read_to_string(stream_path(&gold_dir, 0)).unwrap();
        stream::validate_jsonl(&gold_stream).unwrap();
        let n_ckpts = fs::read_to_string(journal_path(&gold_dir))
            .unwrap()
            .lines()
            .filter(|l| l.starts_with("ckpt 0 "))
            .count() as u64;
        assert!(n_ckpts >= 2, "multi-barrier FFT must checkpoint repeatedly");

        // Killed after two checkpoints: resumes from the newest.
        let dir = forge_crash_dir("crash", &gold_dir, 2);
        let resumed = run_matrix_journaled(fft_cells(), Some(100_000_000), &dir).unwrap();
        assert!(
            matches!(resumed[0].resume, ResumeNote::Resumed { seq: 1, .. }),
            "got {:?}",
            resumed[0].resume
        );
        assert_eq!(
            fs::read_to_string(artifacts_path(&dir, 0)).unwrap(),
            gold_bytes,
            "resumed artifacts must be byte-identical to the straight run"
        );
        let resumed_stream = fs::read_to_string(stream_path(&dir, 0)).unwrap();
        stream::validate_jsonl(&resumed_stream).unwrap();
        assert_eq!(
            stream::deterministic_lines(&resumed_stream),
            stream::deterministic_lines(&gold_stream),
            "resumed stream's deterministic events must equal the straight run's"
        );

        // Newest checkpoint corrupted: falls back to the older one.
        let dir = forge_crash_dir("crash-corrupt", &gold_dir, 2);
        let path = ckpt_path(&dir, 0, 1);
        let bad = fs::read_to_string(&path)
            .unwrap()
            .replace("consumed=", "consumed=9");
        fs::write(&path, bad).unwrap();
        let resumed = run_matrix_journaled(fft_cells(), Some(100_000_000), &dir).unwrap();
        assert!(
            matches!(resumed[0].resume, ResumeNote::Resumed { seq: 0, .. }),
            "got {:?}",
            resumed[0].resume
        );
        assert_eq!(
            fs::read_to_string(artifacts_path(&dir, 0)).unwrap(),
            gold_bytes
        );
        assert_eq!(
            stream::deterministic_lines(&fs::read_to_string(stream_path(&dir, 0)).unwrap()),
            stream::deterministic_lines(&gold_stream)
        );

        // Every checkpoint destroyed: restart from zero, still identical.
        let dir = forge_crash_dir("crash-zero", &gold_dir, 2);
        for seq in 0..2 {
            fs::write(ckpt_path(&dir, 0, seq), "garbage").unwrap();
        }
        let resumed = run_matrix_journaled(fft_cells(), Some(100_000_000), &dir).unwrap();
        assert!(
            matches!(resumed[0].resume, ResumeNote::RestartedFromZero { .. }),
            "got {:?}",
            resumed[0].resume
        );
        assert_eq!(
            fs::read_to_string(artifacts_path(&dir, 0)).unwrap(),
            gold_bytes
        );
        assert_eq!(
            stream::deterministic_lines(&fs::read_to_string(stream_path(&dir, 0)).unwrap()),
            stream::deterministic_lines(&gold_stream),
            "a from-zero rerun re-creates the same deterministic events"
        );
        for tag in ["gold", "crash", "crash-corrupt", "crash-zero"] {
            let _ = fs::remove_dir_all(tmpdir(tag));
        }
    }

    #[test]
    fn hostprof_side_file_rides_the_journal_without_touching_identity() {
        let dir = tmpdir("hostprof");
        let study = Study::scaled();
        let mut cfg = study.hardware(1);
        cfg.hostprof = true;
        // The knob is host-side observability: it must not change what
        // the cell *is*, or enabling it would force a rerun on resume.
        let mut off = cfg.clone();
        off.hostprof = false;
        let probe = Arc::new(RestartProbe::new(2_000));
        assert_eq!(
            cell_identity(&cfg, probe.as_ref()),
            cell_identity(&off, probe.as_ref()),
            "hostprof knob must be excluded from cell identity"
        );
        let cells: Vec<MatrixCell> = vec![(cfg, probe as Arc<dyn Program>)];
        let reports = run_matrix_journaled(cells, Some(10_000_000), &dir).unwrap();
        assert!(reports[0]
            .outcome
            .as_ref()
            .is_some_and(CellOutcome::is_completed));
        let text = fs::read_to_string(hostprof_path(&dir, 0)).unwrap();
        flashsim_engine::hostprof::validate_jsonl(&text).unwrap();
        // The artifacts stay simulation-deterministic: no host numbers.
        let artifacts = fs::read_to_string(artifacts_path(&dir, 0)).unwrap();
        assert!(!artifacts.contains("hostprof"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_journal_tail_is_tolerated() {
        let prior = parse_journal(
            "flashsim-journal-v1\nstart 0 abc\nckpt 0 0 500\nfinish 0 o",
            1,
        );
        assert_eq!(prior[0].hash.as_deref(), Some("abc"));
        assert_eq!(prior[0].ckpts, vec![(0, 500)]);
        assert_eq!(prior[0].finished, None, "torn finish line must not count");
        // Garbage lines and wrong magic degrade to no prior state.
        assert!(parse_journal("not-a-journal\nstart 0 abc\n", 1)[0]
            .hash
            .is_none());
        let noisy = parse_journal("flashsim-journal-v1\nwat\nstart zero abc\n", 1);
        assert!(noisy[0].hash.is_none());
    }
}
