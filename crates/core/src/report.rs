//! Rendering figures and tables as text, plus the paper's published
//! numbers for side-by-side comparison.

use crate::calibrate::Calibration;
use crate::figures::{RelativeFigure, SpeedupFigure};
use crate::platform::Sim;
use std::fmt::Write as _;

/// Renders a relative-execution-time figure as a sims × apps grid.
/// Failed cells are marked `!kind` (e.g. `!deadlock`) and a summary line
/// counts the degraded cells, so partial matrices stay readable.
pub fn render_relative(fig: &RelativeFigure) -> String {
    let apps = ["FFT", "Radix-Sort", "LU", "Ocean"];
    let mut out = String::new();
    let _ = writeln!(out, "{}", fig.title);
    let _ = writeln!(
        out,
        "(relative execution time vs FLASH hardware; 1.0 = exact)"
    );
    let _ = write!(out, "{:<22}", "simulator");
    for app in apps {
        let _ = write!(out, "{app:>12}");
    }
    let _ = writeln!(out);
    for sim in Sim::figure_order() {
        let label = sim.label();
        let _ = write!(out, "{label:<22}");
        for app in apps {
            match fig.point(app, &label) {
                Some(p) => match &p.error {
                    Some(kind) => {
                        let _ = write!(out, "{:>12}", format!("!{kind}"));
                    }
                    None => {
                        let _ = write!(out, "{:>12.2}", p.relative);
                    }
                },
                None => {
                    let _ = write!(out, "{:>12}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    let failed = fig.failed_cells();
    if failed > 0 {
        let _ = writeln!(
            out,
            "({failed} cell(s) failed and are marked !kind; the rest of the matrix is intact)"
        );
    }
    out
}

/// Renders a speedup figure as platform rows × processor-count columns.
pub fn render_speedup(fig: &SpeedupFigure) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}", fig.title);
    let counts: Vec<u32> = fig
        .curves
        .first()
        .map(|c| c.points.iter().map(|(p, _)| *p).collect())
        .unwrap_or_default();
    let _ = write!(out, "{:<22}", "platform");
    for p in &counts {
        let _ = write!(out, "{:>8}", format!("P={p}"));
    }
    let _ = writeln!(out);
    for curve in &fig.curves {
        let _ = write!(out, "{:<22}", curve.platform);
        for p in &counts {
            match curve.at(*p) {
                Some(s) => {
                    let _ = write!(out, "{s:>8.2}");
                }
                None => {
                    let _ = write!(out, "{:>8}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders the Table-3 reproduction next to the paper's published values.
pub fn render_table3(cal: &Calibration) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 3: dependent-load latencies (ns; parenthesized = relative to hardware)"
    );
    let _ = writeln!(
        out,
        "{:<22}{:>10}{:>18}{:>18}  | paper HW / tuned / untuned",
        "protocol case", "HW", "tuned FL", "untuned FL"
    );
    for row in &cal.table3 {
        let paper = paper::TABLE3
            .iter()
            .find(|(case, ..)| *case == row.case.label())
            .map(|(_, hw, tuned, untuned)| format!("{hw} / {tuned} / {untuned}"))
            .unwrap_or_default();
        let _ = writeln!(
            out,
            "{:<22}{:>10.0}{:>11.0} ({:.2}){:>11.0} ({:.2})  | {}",
            row.case.label(),
            row.hardware_ns,
            row.tuned_ns,
            row.tuned_relative(),
            row.untuned_ns,
            row.untuned_relative(),
            paper
        );
    }
    let _ = writeln!(
        out,
        "TLB: {:.0}ns/load missing vs {:.0}ns/load hitting => {} cycles (paper: 65; Mipsy predicted 25, MXS 35)",
        cal.tlb.missing_per_load_ns, cal.tlb.baseline_per_load_ns, cal.tlb.inferred_refill_cycles
    );
    let _ = writeln!(
        out,
        "Mipsy L2-interface occupancy: {} (calibrated); FlashLite fit converged in {} rounds",
        match cal.tuning.mipsy_l2_iface {
            Some(t) => format!("{:.0}ns", t.as_ns_f64()),
            None => "none".to_owned(),
        },
        cal.rounds
    );
    out
}

/// Renders the paper's Table 1 (the hardware configuration we model).
pub fn render_table1() -> String {
    let rows: [(&str, &str); 11] = [
        ("Processor", "MIPS R10000 (gold-standard model)"),
        ("Number of Processors", "1-16"),
        ("Processor Clock Speed", "150 MHz"),
        ("System Clock Speed", "75 MHz"),
        (
            "Instruction Cache",
            "32 KB, 64 B line (modelled as hitting)",
        ),
        ("Primary Data Cache", "32 KB, 32 B line size"),
        ("Secondary Cache", "2 MB, 128 B line size"),
        ("Max. IPC", "4"),
        ("Max. Outstanding Misses", "4"),
        ("Network", "50 ns hops, hypercube"),
        ("Memory", "140 ns to first double-word"),
    ];
    let mut out = String::from("Table 1: FLASH hardware configuration\n");
    for (k, v) in rows {
        let _ = writeln!(out, "{k:<28}{v}");
    }
    out.push_str("Cache Coherence Protocol    dynamic pointer allocation\n");
    out
}

/// Published values from the paper, used in EXPERIMENTS.md comparisons.
pub mod paper {
    /// Table 3 rows: (case label, hardware ns, tuned FlashLite ns,
    /// untuned FlashLite ns).
    pub const TABLE3: [(&str, u32, u32, u32); 5] = [
        ("Local, clean", 587, 615, 510),
        ("Local, dirty remote", 2201, 2202, 2152),
        ("Remote, clean", 1484, 1457, 1311),
        ("Remote, dirty home", 2359, 2378, 2215),
        ("Remote, dirty remote", 2617, 2658, 2957),
    ];

    /// Measured TLB refill cost (cycles) and the untuned model predictions.
    pub const TLB_REFILL: (u64, u64, u64) = (65, 25, 35); // (true, Mipsy, MXS)

    /// Radix-Sort hardware speedup on 16 processors (§3.2.2).
    pub const RADIX_SPEEDUP_16: f64 = 5.3;

    /// NUMA's unplaced-Radix speedup error at 16 processors (§3.3).
    pub const NUMA_HOTSPOT_ERROR_16: f64 = 0.31;

    /// §3.1.3: SimOS-Mipsy-225 Radix-Sort relative time without → with
    /// instruction latencies.
    pub const LATENCY_ABLATION: (f64, f64) = (0.71, 1.02);

    /// §3.1.2: FFT TLB-blocking gains (uniprocessor, 4-processor).
    pub const FFT_BLOCKING_GAIN: (f64, f64) = (0.14, 0.16);

    /// §3.1.2: Radix radix-reduction gains (uniprocessor, 4-processor).
    pub const RADIX_TUNING_GAIN: (f64, f64) = (0.31, 0.34);

    /// §3.1.3: MXS runs 20-30% faster than the hardware.
    pub const MXS_FAST_BAND: (f64, f64) = (0.70, 0.80);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::{RelativePoint, SpeedupCurve};

    #[test]
    fn render_relative_contains_all_columns() {
        let fig = RelativeFigure {
            title: "Figure X".into(),
            nodes: 1,
            points: vec![
                RelativePoint::measured("FFT", "SimOS-Mipsy 150MHz".into(), 0.93),
                RelativePoint {
                    app: "LU",
                    sim: "SimOS-Mipsy 150MHz".into(),
                    relative: f64::NAN,
                    error: Some("stalled".into()),
                },
            ],
        };
        let s = render_relative(&fig);
        assert!(s.contains("Figure X"));
        assert!(s.contains("FFT") && s.contains("Ocean"));
        assert!(s.contains("0.93"));
        assert!(s.contains("Solo-Mipsy 300MHz"));
        assert!(s.contains("!stalled"), "failed cell must be marked: {s}");
        assert!(s.contains("1 cell(s) failed"), "{s}");
    }

    #[test]
    fn render_speedup_lists_counts() {
        let fig = SpeedupFigure {
            title: "Figure Y".into(),
            curves: vec![SpeedupCurve {
                platform: "FLASH 150MHz".into(),
                points: vec![(1, 1.0), (16, 11.5)],
            }],
        };
        let s = render_speedup(&fig);
        assert!(s.contains("P=16") && s.contains("11.50"));
    }

    #[test]
    fn table1_covers_table_rows() {
        let s = render_table1();
        assert!(s.contains("150 MHz"));
        assert!(s.contains("hypercube"));
        assert!(s.contains("dynamic pointer allocation"));
    }

    #[test]
    fn paper_constants_are_internally_consistent() {
        assert_eq!(paper::TABLE3.len(), 5);
        assert!(paper::TABLE3.iter().all(|(_, hw, ..)| *hw > 0));
        assert_eq!(paper::TLB_REFILL.0, 65);
        assert!(paper::LATENCY_ABLATION.0 < paper::LATENCY_ABLATION.1);
    }
}

/// Serializes a relative figure as CSV (`app,simulator,relative,error`).
/// Failed cells leave the relative column empty and name the failure
/// kind in the error column.
pub fn relative_to_csv(fig: &crate::figures::RelativeFigure) -> String {
    let mut out = String::from("app,simulator,relative,error\n");
    for p in &fig.points {
        match &p.error {
            Some(kind) => {
                let _ = std::fmt::Write::write_fmt(
                    &mut out,
                    format_args!("{},{},,{kind}\n", p.app, p.sim),
                );
            }
            None => {
                let _ = std::fmt::Write::write_fmt(
                    &mut out,
                    format_args!("{},{},{:.4},\n", p.app, p.sim, p.relative),
                );
            }
        }
    }
    out
}

/// Serializes a speedup figure as CSV (`platform,processors,speedup`).
pub fn speedup_to_csv(fig: &crate::figures::SpeedupFigure) -> String {
    let mut out = String::from("platform,processors,speedup\n");
    for c in &fig.curves {
        for (p, s) in &c.points {
            let _ = std::fmt::Write::write_fmt(
                &mut out,
                format_args!("{},{},{:.4}\n", c.platform, p, s),
            );
        }
    }
    out
}

#[cfg(test)]
mod csv_tests {
    use super::*;
    use crate::figures::{RelativeFigure, RelativePoint, SpeedupCurve, SpeedupFigure};

    #[test]
    fn relative_csv_roundtrips_fields() {
        let fig = RelativeFigure {
            title: "t".into(),
            nodes: 1,
            points: vec![
                RelativePoint::measured("FFT", "SimOS-MXS 150MHz".into(), 0.7321),
                RelativePoint {
                    app: "LU",
                    sim: "SimOS-MXS 150MHz".into(),
                    relative: f64::NAN,
                    error: Some("deadlock".into()),
                },
            ],
        };
        let csv = relative_to_csv(&fig);
        assert!(csv.starts_with("app,simulator,relative,error\n"));
        assert!(csv.contains("FFT,SimOS-MXS 150MHz,0.7321,"));
        assert!(csv.contains("LU,SimOS-MXS 150MHz,,deadlock"));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn speedup_csv_lists_every_point() {
        let fig = SpeedupFigure {
            title: "t".into(),
            curves: vec![SpeedupCurve {
                platform: "NUMA".into(),
                points: vec![(1, 1.0), (8, 4.7)],
            }],
        };
        let csv = speedup_to_csv(&fig);
        assert!(csv.contains("NUMA,1,1.0000"));
        assert!(csv.contains("NUMA,8,4.7000"));
        assert_eq!(csv.lines().count(), 3);
    }
}
