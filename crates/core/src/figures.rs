//! Data generation for every figure in the paper's evaluation.
//!
//! Each `figN` function runs the exact experiment matrix behind the
//! corresponding figure and returns structured data; `flashsim-bench`
//! binaries render them. All runs within a figure execute in parallel on
//! host threads (each simulation is single-threaded and independent).
//!
//! | Function | Paper figure | Matrix |
//! |---|---|---|
//! | [`fig1`] | Figure 1 | untuned apps × untuned sims, uniprocessor |
//! | [`fig2`] | Figure 2 | TLB-blocking app fixes applied |
//! | [`fig3`] | Figure 3 | + calibrated simulators |
//! | [`fig4`] | Figure 4 | same, four processors |
//! | [`fig5`] | Figure 5 | FFT speedup: hardware, SimOS-MXS, SimOS-Mipsy-300 |
//! | [`fig6`] | Figure 6 | Radix speedup: hardware, SimOS-Mipsy-225, Solo-Mipsy-225 |
//! | [`fig7`] | Figure 7 | unplaced Radix: FlashLite (un/tuned) vs NUMA |
//! | [`latency_ablation`] | §3.1.3 | Radix on SimOS-Mipsy-225 ± real mul/div latencies |

use crate::platform::{MemModel, Sim, Study, Tuning};
use crate::runner::{parallel_map, relative_time, run_hardware, run_once, run_supervised, speedup};
use flashsim_engine::TimeDelta;
use flashsim_isa::Program;
use flashsim_machine::{CpuModel, MachineConfig};
use flashsim_workloads::{Fft, FftBlocking, Lu, Ocean, ProblemScale, Radix};
use std::sync::Arc;

/// The four applications at a given thread count, in figure order.
/// `apps_tuned` applies the Figure-2 TLB-blocking fixes.
pub fn apps_untuned(scale: ProblemScale, threads: usize) -> Vec<(&'static str, Arc<dyn Program>)> {
    vec![
        (
            "FFT",
            Arc::new(Fft::sized(scale, threads, FftBlocking::Cache)) as Arc<dyn Program>,
        ),
        ("Radix-Sort", Arc::new(Radix::untuned(scale, threads))),
        ("LU", Arc::new(Lu::sized(scale, threads))),
        ("Ocean", Arc::new(Ocean::sized(scale, threads))),
    ]
}

/// The applications with the paper's §3.1.2 input fixes (FFT blocked for
/// the TLB; Radix-Sort with the reduced radix).
pub fn apps_tuned(scale: ProblemScale, threads: usize) -> Vec<(&'static str, Arc<dyn Program>)> {
    vec![
        (
            "FFT",
            Arc::new(Fft::sized(scale, threads, FftBlocking::Tlb)) as Arc<dyn Program>,
        ),
        ("Radix-Sort", Arc::new(Radix::tuned(scale, threads))),
        ("LU", Arc::new(Lu::sized(scale, threads))),
        ("Ocean", Arc::new(Ocean::sized(scale, threads))),
    ]
}

/// One bar of a relative-execution-time figure.
#[derive(Debug, Clone)]
pub struct RelativePoint {
    /// Application name.
    pub app: &'static str,
    /// Simulator column label.
    pub sim: String,
    /// Simulated time / hardware time (1.0 = exact). NaN when the cell
    /// failed (see [`RelativePoint::error`]).
    pub relative: f64,
    /// The failure kind (`"deadlock"`, `"stalled"`, ...) if the cell's
    /// run did not complete; `None` for healthy cells.
    pub error: Option<String>,
}

impl RelativePoint {
    /// A healthy measured bar.
    pub fn measured(app: &'static str, sim: String, relative: f64) -> RelativePoint {
        RelativePoint {
            app,
            sim,
            relative,
            error: None,
        }
    }
}

/// A Figure-1/2/3/4-style dataset.
#[derive(Debug, Clone)]
pub struct RelativeFigure {
    /// Figure title.
    pub title: String,
    /// Node count of every run.
    pub nodes: u32,
    /// All bars.
    pub points: Vec<RelativePoint>,
}

impl RelativeFigure {
    /// The bar for (`app`, `sim` label), if present.
    pub fn get(&self, app: &str, sim: &str) -> Option<f64> {
        self.point(app, sim).map(|p| p.relative)
    }

    /// The full point for (`app`, `sim` label), if present.
    pub fn point(&self, app: &str, sim: &str) -> Option<&RelativePoint> {
        self.points.iter().find(|p| p.app == app && p.sim == sim)
    }

    /// Number of cells that failed to produce a measurement.
    pub fn failed_cells(&self) -> usize {
        self.points.iter().filter(|p| p.error.is_some()).count()
    }
}

fn relative_figure(
    study: &Study,
    title: &str,
    nodes: u32,
    apps: Vec<(&'static str, Arc<dyn Program>)>,
    tuning: Option<&Tuning>,
) -> RelativeFigure {
    let sims = Sim::figure_order();
    // Hardware baselines (one per app), in parallel.
    let hw_times: Vec<TimeDelta> = parallel_map(apps.clone(), |(_, prog)| {
        run_hardware(study, nodes, prog.as_ref()).parallel_time
    });

    let mut jobs: Vec<(usize, Sim, Arc<dyn Program>)> = Vec::new();
    for (app_idx, (_, prog)) in apps.iter().enumerate() {
        for sim in &sims {
            jobs.push((app_idx, *sim, Arc::clone(prog)));
        }
    }
    // Every simulator cell runs supervised: a deadlocked or faulted cell
    // becomes a marked degraded bar instead of sinking the whole figure.
    let results: Vec<(usize, Sim, Result<TimeDelta, String>)> =
        parallel_map(jobs, |(app_idx, sim, prog)| {
            let cfg = match tuning {
                None => study.sim(sim, nodes, MemModel::FlashLite),
                Some(t) => study.sim_tuned(sim, nodes, MemModel::FlashLite, t),
            };
            let outcome = run_supervised(cfg, prog.as_ref());
            let cell = match outcome.parallel_time() {
                Some(t) => Ok(t),
                None => Err(outcome
                    .error()
                    .map(|e| e.kind().to_owned())
                    .unwrap_or_else(|| "unknown".to_owned())),
            };
            (app_idx, sim, cell)
        });

    let points = results
        .into_iter()
        .map(|(app_idx, sim, cell)| match cell {
            Ok(t) => RelativePoint::measured(
                apps[app_idx].0,
                sim.label(),
                relative_time(t, hw_times[app_idx]),
            ),
            Err(kind) => RelativePoint {
                app: apps[app_idx].0,
                sim: sim.label(),
                relative: f64::NAN,
                error: Some(kind),
            },
        })
        .collect();
    RelativeFigure {
        title: title.to_owned(),
        nodes,
        points,
    }
}

/// Figure 1: initial uniprocessor comparison — untuned applications on
/// untuned simulators.
pub fn fig1(study: &Study, scale: ProblemScale) -> RelativeFigure {
    relative_figure(
        study,
        "Figure 1: Initial uniprocessor SPLASH-2 results before simulator tuning",
        1,
        apps_untuned(scale, 1),
        None,
    )
}

/// Figure 2: after the application TLB-blocking fixes.
pub fn fig2(study: &Study, scale: ProblemScale) -> RelativeFigure {
    relative_figure(
        study,
        "Figure 2: Uniprocessor SPLASH-2 results after blocking fixes",
        1,
        apps_tuned(scale, 1),
        None,
    )
}

/// Figure 3: final uniprocessor comparison with calibrated simulators.
pub fn fig3(study: &Study, scale: ProblemScale, tuning: &Tuning) -> RelativeFigure {
    relative_figure(
        study,
        "Figure 3: Final uniprocessor SPLASH-2 comparison",
        1,
        apps_tuned(scale, 1),
        Some(tuning),
    )
}

/// Figure 4: final four-processor comparison.
pub fn fig4(study: &Study, scale: ProblemScale, tuning: &Tuning) -> RelativeFigure {
    relative_figure(
        study,
        "Figure 4: Final 4-processor SPLASH-2 comparison",
        4,
        apps_tuned(scale, 4),
        Some(tuning),
    )
}

/// One platform's speedup curve.
#[derive(Debug, Clone)]
pub struct SpeedupCurve {
    /// Platform label.
    pub platform: String,
    /// `(processors, speedup)` points.
    pub points: Vec<(u32, f64)>,
}

impl SpeedupCurve {
    /// The speedup at `p` processors, if measured.
    pub fn at(&self, p: u32) -> Option<f64> {
        self.points.iter().find(|(n, _)| *n == p).map(|(_, s)| *s)
    }
}

/// A Figure-5/6/7-style dataset.
#[derive(Debug, Clone)]
pub struct SpeedupFigure {
    /// Figure title.
    pub title: String,
    /// One curve per platform.
    pub curves: Vec<SpeedupCurve>,
}

impl SpeedupFigure {
    /// The curve with the given platform label.
    pub fn curve(&self, platform: &str) -> Option<&SpeedupCurve> {
        self.curves.iter().find(|c| c.platform == platform)
    }
}

/// Builds one speedup curve for a platform given a program factory.
///
/// Failed cells are dropped from the curve; if the P=1 baseline itself
/// fails, the curve is returned with no points (the platform label is
/// kept so renderers can mark it degraded) instead of panicking.
fn speedup_curve<F, G>(label: &str, counts: &[u32], make_prog: &F, make_cfg: &G) -> SpeedupCurve
where
    F: Fn(u32) -> Arc<dyn Program> + Sync,
    G: Fn(u32) -> Option<MachineConfig> + Sync,
{
    let times: Vec<(u32, Option<TimeDelta>)> = parallel_map(counts.to_vec(), |p| {
        let prog = make_prog(p);
        let t = match make_cfg(p) {
            Some(cfg) => run_supervised(cfg, prog.as_ref()).parallel_time(),
            None => {
                // Hardware path: averaged measurement handled by caller.
                unreachable!("hardware curves use speedup_curve_hw") // gate: allow
            }
        };
        (p, t)
    });
    let t1 = times.iter().find(|(p, _)| *p == 1).and_then(|(_, t)| *t);
    let points = match t1 {
        Some(t1) => times
            .into_iter()
            .filter_map(|(p, t)| t.map(|t| (p, speedup(t1, t))))
            .collect(),
        None => Vec::new(),
    };
    SpeedupCurve {
        platform: label.to_owned(),
        points,
    }
}

fn speedup_curve_hw<F>(study: &Study, counts: &[u32], make_prog: &F) -> SpeedupCurve
where
    F: Fn(u32) -> Arc<dyn Program> + Sync,
{
    let times: Vec<(u32, TimeDelta)> = parallel_map(counts.to_vec(), |p| {
        let prog = make_prog(p);
        (p, run_hardware(study, p, prog.as_ref()).parallel_time)
    });
    let t1 = times.iter().find(|(p, _)| *p == 1).expect("has 1p").1; // gate: allow
    SpeedupCurve {
        platform: "FLASH 150MHz".to_owned(),
        points: times
            .into_iter()
            .map(|(p, t)| (p, speedup(t1, t)))
            .collect(),
    }
}

/// The processor counts of the speedup studies.
pub const SPEEDUP_COUNTS: [u32; 5] = [1, 2, 4, 8, 16];

/// Figure 5: FFT speedup — hardware, SimOS-MXS, and the misleading
/// SimOS-Mipsy at 300 MHz (plus 150 MHz for reference).
pub fn fig5(study: &Study, scale: ProblemScale, tuning: &Tuning) -> SpeedupFigure {
    let make_fft =
        |p: u32| Arc::new(Fft::sized(scale, p as usize, FftBlocking::Tlb)) as Arc<dyn Program>;
    let mut curves = vec![speedup_curve_hw(study, &SPEEDUP_COUNTS, &make_fft)];
    for sim in [Sim::SimosMxs, Sim::SimosMipsy(300), Sim::SimosMipsy(150)] {
        curves.push(speedup_curve(
            &sim.label(),
            &SPEEDUP_COUNTS,
            &make_fft,
            &|p| Some(study.sim_tuned(sim, p, MemModel::FlashLite, tuning)),
        ));
    }
    SpeedupFigure {
        title: "Figure 5: Speedup trend study for FFT".to_owned(),
        curves,
    }
}

/// Figure 6: Radix speedup — hardware, SimOS-Mipsy-225, and Solo-Mipsy-225
/// (which wrongly predicts good speedup).
pub fn fig6(study: &Study, scale: ProblemScale, tuning: &Tuning) -> SpeedupFigure {
    let make_radix = |p: u32| Arc::new(Radix::tuned(scale, p as usize)) as Arc<dyn Program>;
    let mut curves = vec![speedup_curve_hw(study, &SPEEDUP_COUNTS, &make_radix)];
    for sim in [Sim::SimosMipsy(225), Sim::SoloMipsy(225)] {
        curves.push(speedup_curve(
            &sim.label(),
            &SPEEDUP_COUNTS,
            &make_radix,
            &|p| Some(study.sim_tuned(sim, p, MemModel::FlashLite, tuning)),
        ));
    }
    SpeedupFigure {
        title: "Figure 6: Speedup trend study for Radix".to_owned(),
        curves,
    }
}

/// Figure 7: unplaced Radix-Sort speedup under SimOS-Mipsy-225 — the
/// hotspot experiment separating FlashLite (occupancy) from NUMA
/// (latency only).
pub fn fig7(study: &Study, scale: ProblemScale, tuning: &Tuning) -> SpeedupFigure {
    let counts = [1u32, 8, 16];
    let make = |p: u32| Arc::new(Radix::unplaced(scale, p as usize)) as Arc<dyn Program>;
    let sim = Sim::SimosMipsy(225);

    let mut curves = vec![speedup_curve_hw(study, &counts, &make)];
    curves.push(speedup_curve("Tuned FlashLite", &counts, &make, &|p| {
        Some(study.sim_tuned(sim, p, MemModel::FlashLite, tuning))
    }));
    curves.push(speedup_curve("Untuned FlashLite", &counts, &make, &|p| {
        Some(study.sim(sim, p, MemModel::FlashLite))
    }));
    curves.push(speedup_curve("NUMA", &counts, &make, &|p| {
        Some(study.sim_tuned(sim, p, MemModel::Numa, tuning))
    }));
    SpeedupFigure {
        title: "Figure 7: Speedup for unplaced Radix-Sort (SimOS-Mipsy 225MHz)".to_owned(),
        curves,
    }
}

/// The §3.1.3 instruction-latency ablation: Radix-Sort relative time on
/// SimOS-Mipsy-225 without and with the R10000's mul/div latencies.
/// The paper reports 0.71 → 1.02.
pub fn latency_ablation(study: &Study, scale: ProblemScale, tuning: &Tuning) -> (f64, f64) {
    let radix = Radix::tuned(scale, 1);
    let hw = run_hardware(study, 1, &radix).parallel_time;

    let base_cfg = study.sim_tuned(Sim::SimosMipsy(225), 1, MemModel::FlashLite, tuning);
    let without = run_once(base_cfg.clone(), &radix).parallel_time;

    let mut with_cfg = base_cfg;
    with_cfg.cpu = match with_cfg.cpu {
        CpuModel::Mipsy { mhz, l2_iface, .. } => CpuModel::Mipsy {
            mhz,
            model_int_latencies: true,
            l2_iface,
        },
        other => other,
    };
    let with = run_once(with_cfg, &radix).parallel_time;
    (relative_time(without, hw), relative_time(with, hw))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_lists_cover_table2_in_order() {
        let apps = apps_untuned(ProblemScale::Tiny, 1);
        let names: Vec<_> = apps.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["FFT", "Radix-Sort", "LU", "Ocean"]);
        let tuned = apps_tuned(ProblemScale::Tiny, 2);
        assert_eq!(tuned.len(), 4);
        for (_, p) in &tuned {
            assert_eq!(p.num_threads(), 2);
        }
    }

    #[test]
    fn relative_figure_lookup() {
        let fig = RelativeFigure {
            title: "t".into(),
            nodes: 1,
            points: vec![
                RelativePoint::measured("FFT", "SimOS-MXS 150MHz".into(), 0.8),
                RelativePoint {
                    app: "LU",
                    sim: "SimOS-MXS 150MHz".into(),
                    relative: f64::NAN,
                    error: Some("deadlock".into()),
                },
            ],
        };
        assert_eq!(fig.get("FFT", "SimOS-MXS 150MHz"), Some(0.8));
        assert!(fig.get("LU", "SimOS-MXS 150MHz").unwrap().is_nan());
        assert_eq!(fig.get("Ocean", "SimOS-MXS 150MHz"), None);
        assert_eq!(fig.failed_cells(), 1);
        assert_eq!(
            fig.point("LU", "SimOS-MXS 150MHz")
                .unwrap()
                .error
                .as_deref(),
            Some("deadlock")
        );
    }

    #[test]
    fn speedup_figure_lookup() {
        let fig = SpeedupFigure {
            title: "t".into(),
            curves: vec![SpeedupCurve {
                platform: "FLASH 150MHz".into(),
                points: vec![(1, 1.0), (16, 12.0)],
            }],
        };
        let c = fig.curve("FLASH 150MHz").unwrap();
        assert_eq!(c.at(16), Some(12.0));
        assert_eq!(c.at(8), None);
        assert!(fig.curve("nope").is_none());
    }
}
