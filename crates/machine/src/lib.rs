//! `flashsim-machine` — full-machine composition: N processors, their
//! cache hierarchies and TLBs, an OS model, and a memory system, executing
//! a program's op streams.
//!
//! Every platform in the paper's study is a [`config::MachineConfig`]:
//! the gold-standard hardware (R10000 cores + IRIX model + FlashLite with
//! true parameters) and all the simulators under validation (Mipsy/MXS ×
//! Solo/SimOS × FlashLite/NUMA) run through the *same* driver, differing
//! only in configuration — which is precisely what lets the validation
//! harness in `flashsim-core` compare them meaningfully.
//!
//! # Examples
//!
//! ```
//! use flashsim_machine::config::{CpuModel, MachineConfig, MachineGeometry, MemSysKind};
//! use flashsim_machine::machine::run_program;
//! use flashsim_flashlite::FlashLiteParams;
//! use flashsim_os::OsModel;
//! use flashsim_isa::{Placement, Program, Segment, Sink, VAddr};
//!
//! struct Touch;
//! impl Program for Touch {
//!     fn name(&self) -> String { "touch".into() }
//!     fn num_threads(&self) -> usize { 1 }
//!     fn segments(&self) -> Vec<Segment> {
//!         vec![Segment::new("a", VAddr(0x10000), 0x10000, Placement::Blocked)]
//!     }
//!     fn thread_body(&self, _tid: usize) -> Box<dyn FnOnce(&mut Sink) + Send + 'static> {
//!         Box::new(|sink| {
//!             for i in 0..64u64 { sink.load(VAddr(0x10000 + i * 8)); }
//!         })
//!     }
//! }
//!
//! let cfg = MachineConfig::new(
//!     1,
//!     CpuModel::Mipsy { mhz: 150, model_int_latencies: false, l2_iface: None },
//!     OsModel::solo(),
//!     MemSysKind::FlashLite(FlashLiteParams::hardware()),
//!     MachineGeometry::scaled(),
//! );
//! let result = run_program(cfg, &Touch).unwrap();
//! assert_eq!(result.total_ops(), 64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod error;
pub mod machine;

pub use config::{CpuModel, MachineConfig, MachineGeometry, MemSysKind, SchedPolicy};
pub use error::{NodeSnapshot, NodeState, SimError, Watchdog};
pub use machine::{
    run_program, CkptSink, Machine, MachineError, RestoreError, RunManifest, RunResult,
};

#[cfg(test)]
mod tests {
    use super::*;
    use flashsim_flashlite::FlashLiteParams;
    use flashsim_isa::{OpClass, Placement, Program, Segment, Sink, VAddr};
    use flashsim_numa::NumaParams;
    use flashsim_os::OsModel;

    /// A parallel program: each thread walks its own block of a shared
    /// array, then all barrier, then thread 0 reads everyone's data
    /// (communication), then all barrier again.
    struct BlockWalk {
        threads: usize,
        bytes_per_thread: u64,
        use_lock: bool,
    }

    const BASE: u64 = 0x100000;

    impl Program for BlockWalk {
        fn name(&self) -> String {
            "block-walk".into()
        }

        fn num_threads(&self) -> usize {
            self.threads
        }

        fn segments(&self) -> Vec<Segment> {
            vec![
                Segment::new(
                    "data",
                    VAddr(BASE),
                    self.bytes_per_thread * self.threads as u64,
                    Placement::Blocked,
                ),
                Segment::new("locks", VAddr(0x10000), 4096, Placement::Node(0)),
            ]
        }

        fn thread_body(&self, tid: usize) -> Box<dyn FnOnce(&mut Sink) + Send + 'static> {
            let bytes = self.bytes_per_thread;
            let threads = self.threads as u64;
            let use_lock = self.use_lock;
            Box::new(move |sink| {
                let my_base = BASE + tid as u64 * bytes;
                // Init: write my block.
                for i in (0..bytes).step_by(64) {
                    sink.store(VAddr(my_base + i));
                    sink.alu(2);
                }
                sink.barrier();
                // Parallel phase: read my block with some compute.
                for i in (0..bytes).step_by(8) {
                    let v = sink.load(VAddr(my_base + i));
                    sink.chain(OpClass::IntAlu, 1, v);
                }
                if use_lock {
                    sink.lock(1, VAddr(0x10000));
                    sink.store(VAddr(0x10040));
                    sink.unlock(1, VAddr(0x10000));
                }
                sink.barrier();
                // Thread 0 reads everyone's blocks (coherence traffic).
                if tid == 0 {
                    for t in 0..threads {
                        let base = BASE + t * bytes;
                        for i in (0..bytes).step_by(64) {
                            sink.load(VAddr(base + i));
                        }
                    }
                }
                sink.barrier();
            })
        }

        fn timing_barrier(&self) -> Option<u32> {
            Some(0)
        }
    }

    fn cfg(nodes: u32, cpu: CpuModel, os: OsModel, memsys: MemSysKind) -> MachineConfig {
        MachineConfig::new(nodes, cpu, os, memsys, MachineGeometry::scaled())
    }

    fn mipsy(mhz: u32) -> CpuModel {
        CpuModel::Mipsy {
            mhz,
            model_int_latencies: false,
            l2_iface: None,
        }
    }

    fn fl() -> MemSysKind {
        MemSysKind::FlashLite(FlashLiteParams::hardware())
    }

    fn small_prog(threads: usize) -> BlockWalk {
        BlockWalk {
            threads,
            bytes_per_thread: 64 * 1024,
            use_lock: false,
        }
    }

    #[test]
    fn uniprocessor_run_completes() {
        let r = run_program(cfg(1, mipsy(150), OsModel::solo(), fl()), &small_prog(1)).unwrap();
        assert!(r.total_time.as_ns() > 0);
        assert!(r.parallel_time <= r.total_time);
        assert_eq!(r.barrier_releases.len(), 3);
        assert!(r.stats.get_or_zero("l2.misses") > 0.0);
    }

    #[test]
    fn same_binary_on_every_platform() {
        let prog = small_prog(2);
        let configs = vec![
            cfg(2, mipsy(150), OsModel::solo(), fl()),
            cfg(2, mipsy(300), OsModel::simos_mipsy(), fl()),
            cfg(2, CpuModel::Mxs, OsModel::simos_mxs(), fl()),
            cfg(2, CpuModel::R10000, OsModel::irix_hardware(), fl()),
            cfg(
                2,
                mipsy(225),
                OsModel::simos_tuned(),
                MemSysKind::Numa(NumaParams::matched()),
            ),
        ];
        let counts: Vec<Vec<u64>> = configs
            .into_iter()
            .map(|c| run_program(c, &prog).unwrap().ops_per_node)
            .collect();
        for c in &counts[1..] {
            assert_eq!(c, &counts[0], "op streams must be platform-independent");
        }
    }

    #[test]
    fn barriers_synchronize_all_nodes() {
        let r = run_program(cfg(4, mipsy(150), OsModel::solo(), fl()), &small_prog(4)).unwrap();
        assert_eq!(r.barrier_releases.len(), 3);
        let times: Vec<_> = r.barrier_releases.iter().map(|(_, t)| *t).collect();
        assert!(times[0] < times[1] && times[1] < times[2]);
    }

    #[test]
    fn locks_serialize_and_hand_off() {
        let prog = BlockWalk {
            threads: 4,
            bytes_per_thread: 16 * 1024,
            use_lock: true,
        };
        let r = run_program(cfg(4, mipsy(150), OsModel::solo(), fl()), &prog).unwrap();
        assert!(r.total_time.as_ns() > 0);
        // The lock hand-offs move the lock line between nodes' caches:
        // some dirty-transfer or ownership traffic must exist.
        let coherence_traffic = r.stats.get_or_zero("proto.upgrade.count")
            + r.stats.get_or_zero("proto.remote_clean.count")
            + r.stats.get_or_zero("proto.remote_dirty_home.count")
            + r.stats.get_or_zero("proto.remote_dirty_remote.count")
            + r.stats.get_or_zero("proto.local_dirty_remote.count");
        assert!(
            coherence_traffic > 0.0,
            "lock line never moved: {}",
            r.stats
        );
    }

    #[test]
    fn faster_mipsy_clock_shortens_runs() {
        let prog = small_prog(1);
        let slow = run_program(cfg(1, mipsy(150), OsModel::solo(), fl()), &prog).unwrap();
        let fast = run_program(cfg(1, mipsy(300), OsModel::solo(), fl()), &prog).unwrap();
        assert!(fast.parallel_time < slow.parallel_time);
    }

    #[test]
    fn simos_models_tlb_solo_does_not() {
        let prog = small_prog(1);
        let solo = run_program(cfg(1, mipsy(150), OsModel::solo(), fl()), &prog).unwrap();
        let simos = run_program(cfg(1, mipsy(150), OsModel::simos_tuned(), fl()), &prog).unwrap();
        assert_eq!(solo.stats.get_or_zero("os.tlb_refills"), 0.0);
        assert!(simos.stats.get_or_zero("os.tlb_refills") > 0.0);
    }

    #[test]
    fn remote_reads_generate_protocol_traffic() {
        let r = run_program(
            cfg(4, mipsy(150), OsModel::simos_tuned(), fl()),
            &small_prog(4),
        )
        .unwrap();
        // Thread 0's sweep over other nodes' dirty blocks must produce
        // dirty-remote protocol cases.
        let dirty = r.stats.get_or_zero("proto.remote_dirty_remote.count")
            + r.stats.get_or_zero("proto.local_dirty_remote.count")
            + r.stats.get_or_zero("proto.remote_dirty_home.count");
        assert!(dirty > 0.0, "expected dirty-remote traffic: {}", r.stats);
    }

    #[test]
    fn thread_mismatch_is_an_error() {
        let err = Machine::new(cfg(2, mipsy(150), OsModel::solo(), fl()), &small_prog(4));
        assert!(matches!(
            err,
            Err(MachineError::ThreadMismatch {
                program: 4,
                nodes: 2
            })
        ));
        let msg = format!("{}", err.err().unwrap());
        assert!(msg.contains('4') && msg.contains('2'));
    }

    #[test]
    fn numa_and_flashlite_agree_on_protocol_counts() {
        let prog = small_prog(2);
        let a = run_program(cfg(2, mipsy(150), OsModel::simos_tuned(), fl()), &prog).unwrap();
        let b = run_program(
            cfg(
                2,
                mipsy(150),
                OsModel::simos_tuned(),
                MemSysKind::Numa(NumaParams::matched()),
            ),
            &prog,
        )
        .unwrap();
        // Same protocol, same streams => same transaction counts.
        for key in ["proto.local_clean.count", "proto.remote_clean.count"] {
            assert_eq!(
                a.stats.get_or_zero(key),
                b.stats.get_or_zero(key),
                "{key} differs between flashlite and numa"
            );
        }
    }

    #[test]
    fn parallel_section_excludes_init() {
        let r = run_program(cfg(1, mipsy(150), OsModel::solo(), fl()), &small_prog(1)).unwrap();
        assert!(r.parallel_time < r.total_time);
    }

    #[test]
    fn run_is_deterministic() {
        let prog = small_prog(4);
        let c = || cfg(4, CpuModel::R10000, OsModel::irix_hardware(), fl());
        let a = run_program(c(), &prog).unwrap();
        let b = run_program(c(), &prog).unwrap();
        assert_eq!(a.total_time, b.total_time);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn manifest_records_provenance_and_throughput() {
        let c = cfg(2, mipsy(150), OsModel::solo(), fl());
        let label = c.label();
        let r = run_program(c, &small_prog(2)).unwrap();
        let m = &r.manifest;
        assert_eq!(m.config, label);
        assert_eq!(m.nodes, 2);
        assert_eq!(m.workload, "block-walk");
        assert_eq!(m.seed, None);
        assert_eq!(m.total_ops, r.total_ops());
        assert!(m.simulated_seconds > 0.0);
        assert!(m.wall_seconds >= 0.0);
        let json = m.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"workload\":\"block-walk\""));
        assert!(json.contains("\"nodes\":2"));
        assert!(json.contains("\"seed\":null"));
    }

    #[test]
    fn traced_run_emits_every_category() {
        use flashsim_engine::{CategoryMask, TraceCategory, Tracer};
        let prog = BlockWalk {
            threads: 2,
            bytes_per_thread: 16 * 1024,
            use_lock: true,
        };
        let tracer = Tracer::new(1 << 16, CategoryMask::ALL);
        let mut c = cfg(2, mipsy(150), OsModel::simos_tuned(), fl());
        // Span markers only exist when a sampling plan is attached.
        c.spans = Some(flashsim_engine::SpanPlan::all(7));
        let mut m = Machine::new(c, &prog).unwrap();
        m.attach_tracer(tracer.clone());
        m.run().unwrap();
        let trace = tracer.snapshot();
        for (cat, count) in trace.counts_by_category() {
            assert!(count > 0, "no {cat} events recorded");
        }
        // Node ids must distinguish the two cores' cpu streams.
        let nodes: std::collections::HashSet<u32> = trace
            .events
            .iter()
            .filter(|e| e.category == TraceCategory::Cpu)
            .map(|e| e.node)
            .collect();
        assert_eq!(nodes.len(), 2);
    }

    #[test]
    fn disabled_tracer_changes_nothing() {
        let prog = small_prog(2);
        let c = || cfg(2, mipsy(150), OsModel::solo(), fl());
        let plain = run_program(c(), &prog).unwrap();
        let mut m = Machine::new(c(), &prog).unwrap();
        m.attach_tracer(flashsim_engine::Tracer::disabled());
        let traced = m.run().unwrap();
        assert_eq!(plain.total_time, traced.total_time);
        assert_eq!(plain.stats, traced.stats);
    }

    #[test]
    fn disabled_profiler_changes_nothing() {
        let prog = small_prog(2);
        let c = || cfg(2, mipsy(150), OsModel::simos_tuned(), fl());
        let plain = run_program(c(), &prog).unwrap();
        let mut m = Machine::new(c(), &prog).unwrap();
        m.attach_profiler(flashsim_engine::Profiler::disabled());
        let profiled = m.run().unwrap();
        assert_eq!(plain.total_time, profiled.total_time);
        assert_eq!(plain.stats, profiled.stats);
        assert!(profiled.accounting.is_none());
        assert!(profiled.manifest.account.is_none());
    }

    #[test]
    fn profiled_run_conserves_every_cycle() {
        use flashsim_engine::{Profiler, StallClass};
        let prog = BlockWalk {
            threads: 4,
            bytes_per_thread: 32 * 1024,
            use_lock: true,
        };
        let mut m = Machine::new(cfg(4, mipsy(150), OsModel::simos_tuned(), fl()), &prog).unwrap();
        m.attach_profiler(Profiler::new());
        let r = m.run().unwrap();
        let acc = r.accounting.as_ref().expect("profiler attached");
        assert!(acc.conserved(), "per-node class sums must equal totals");
        // Every node's total is the machine end time (idle => Compute).
        for node in &acc.nodes {
            assert_eq!(
                node.classes.iter().sum::<u64>(),
                node.total_ps,
                "node {} not conserved",
                node.node
            );
            assert_eq!(node.total_ps, r.total_time.as_ps());
        }
        // The run exercised memory, TLB, and synchronization machinery,
        // so those classes must have been charged somewhere.
        let totals = acc.class_totals();
        for class in [
            StallClass::Compute,
            StallClass::L2Miss,
            StallClass::TlbRefill,
            StallClass::Sync,
            StallClass::Os,
        ] {
            assert!(totals[class as usize] > 0, "no {} charged", class.key());
        }
        // Manifest and stats carry the breakdown.
        let fracs = r.manifest.account.expect("manifest breakdown");
        assert!((fracs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(r.stats.get_or_zero("account.compute.ps") > 0.0);
        assert!(r.manifest.to_json().contains("\"account\":{\"compute\":"));
    }

    /// A program whose thread 0 skips the barrier all others wait at.
    struct SkippedBarrier;
    impl Program for SkippedBarrier {
        fn name(&self) -> String {
            "skipped-barrier".into()
        }
        fn num_threads(&self) -> usize {
            2
        }
        fn segments(&self) -> Vec<Segment> {
            vec![Segment::new("d", VAddr(BASE), 4096, Placement::Node(0))]
        }
        fn thread_body(&self, tid: usize) -> Box<dyn FnOnce(&mut Sink) + Send + 'static> {
            Box::new(move |sink| {
                sink.load(VAddr(BASE));
                if tid != 0 {
                    sink.barrier();
                }
            })
        }
    }

    #[test]
    fn never_released_barrier_is_a_deadlock_not_a_hang() {
        let err = run_program(cfg(2, mipsy(150), OsModel::solo(), fl()), &SkippedBarrier)
            .expect_err("must deadlock");
        let SimError::Deadlock { nodes } = &err else {
            panic!("expected Deadlock, got {err}");
        };
        // The diagnostic names the blocked barrier and the arrival count.
        assert!(matches!(
            nodes[1].state,
            NodeState::AtBarrier {
                id: 0,
                arrived: 1,
                expected: 2
            }
        ));
        assert!(matches!(nodes[0].state, NodeState::Done));
        let msg = format!("{err}");
        assert!(msg.contains("barrier 0"), "{msg}");
        assert!(msg.contains("1/2 arrived"), "{msg}");
    }

    /// Touches an address outside every declared segment.
    struct WildAccess;
    impl Program for WildAccess {
        fn name(&self) -> String {
            "wild-access".into()
        }
        fn num_threads(&self) -> usize {
            1
        }
        fn segments(&self) -> Vec<Segment> {
            vec![Segment::new("d", VAddr(BASE), 4096, Placement::Node(0))]
        }
        fn thread_body(&self, _tid: usize) -> Box<dyn FnOnce(&mut Sink) + Send + 'static> {
            Box::new(|sink| {
                sink.load(VAddr(BASE));
                sink.load(VAddr(0xDEAD_0000));
            })
        }
    }

    #[test]
    fn out_of_range_address_is_unmapped_error() {
        let err = run_program(cfg(1, mipsy(150), OsModel::solo(), fl()), &WildAccess)
            .expect_err("must fault");
        assert!(
            matches!(
                err,
                SimError::UnmappedAddress {
                    node: 0,
                    addr: VAddr(0xDEAD_0000)
                }
            ),
            "got {err}"
        );
    }

    /// Releases a lock it never acquired.
    struct BadUnlock;
    impl Program for BadUnlock {
        fn name(&self) -> String {
            "bad-unlock".into()
        }
        fn num_threads(&self) -> usize {
            1
        }
        fn segments(&self) -> Vec<Segment> {
            vec![Segment::new("d", VAddr(BASE), 4096, Placement::Node(0))]
        }
        fn thread_body(&self, _tid: usize) -> Box<dyn FnOnce(&mut Sink) + Send + 'static> {
            Box::new(|sink| {
                sink.unlock(9, VAddr(BASE));
            })
        }
    }

    #[test]
    fn releasing_unheld_lock_is_structured() {
        let err = run_program(cfg(1, mipsy(150), OsModel::solo(), fl()), &BadUnlock)
            .expect_err("must fault");
        assert!(
            matches!(
                err,
                SimError::UnheldLock {
                    node: 0,
                    lock: 9,
                    holder: None
                }
            ),
            "got {err}"
        );
    }

    #[test]
    fn watchdog_budget_trips_as_stalled_with_snapshots() {
        let mut c = cfg(2, mipsy(150), OsModel::solo(), fl());
        c.watchdog = Watchdog::with_budget(50);
        let err = run_program(c, &small_prog(2)).expect_err("budget far too small");
        let SimError::Stalled {
            ops_executed,
            nodes,
            ..
        } = &err
        else {
            panic!("expected Stalled, got {err}");
        };
        assert_eq!(*ops_executed, 50);
        assert_eq!(nodes.len(), 2);
    }

    #[test]
    fn injected_stall_ends_in_stalled_not_a_hang() {
        use flashsim_engine::FaultPlan;
        let mut c = cfg(2, mipsy(150), OsModel::solo(), fl());
        c.faults = Some(FaultPlan {
            stall_node: Some(1),
            stall_after_ops: 10,
            ..FaultPlan::default()
        });
        let err = run_program(c, &small_prog(2)).expect_err("node 1 stalls");
        let SimError::Stalled { nodes, .. } = &err else {
            panic!("expected Stalled, got {err}");
        };
        assert!(matches!(nodes[1].state, NodeState::Stalled));
        assert!(nodes[1].ops >= 10);
    }

    #[test]
    fn fault_plans_are_run_deterministic() {
        use flashsim_engine::FaultPlan;
        let prog = small_prog(2);
        let run = || {
            let mut c = cfg(2, mipsy(150), OsModel::simos_tuned(), fl());
            c.faults = Some(FaultPlan::chaos(1234));
            c.watchdog = Watchdog::with_budget(10_000_000);
            run_program(c, &prog)
        };
        match (run(), run()) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.total_time, b.total_time);
                assert_eq!(a.stats, b.stats);
            }
            (Err(a), Err(b)) => assert_eq!(a.kind(), b.kind()),
            (a, b) => panic!(
                "same seed diverged: {:?} vs {:?}",
                a.map(|r| r.total_time),
                b.map(|r| r.total_time)
            ),
        }
    }

    #[test]
    fn active_faults_perturb_timing_and_count_in_stats() {
        use flashsim_engine::FaultPlan;
        let prog = small_prog(2);
        let clean = run_program(cfg(2, mipsy(150), OsModel::solo(), fl()), &prog).unwrap();
        let mut c = cfg(2, mipsy(150), OsModel::solo(), fl());
        c.faults = Some(FaultPlan {
            seed: 5,
            latency_prob: 0.5,
            latency_spread: 1.0,
            ..FaultPlan::default()
        });
        let faulty = run_program(c, &prog).unwrap();
        assert!(faulty.total_time > clean.total_time);
        assert!(faulty.stats.get_or_zero("fault.perturbed") > 0.0);
        assert_eq!(clean.stats.get("fault.perturbed"), None);
    }

    /// Runs `prog` under `c()` with a checkpoint sink attached and
    /// returns the uninterrupted result plus every emitted checkpoint.
    fn run_with_ckpts(
        c: &dyn Fn() -> MachineConfig,
        prog: &dyn Program,
    ) -> (RunResult, Vec<(u64, String)>) {
        use std::sync::{Arc, Mutex};
        let ckpts: Arc<Mutex<Vec<(u64, String)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&ckpts);
        let mut m = Machine::new(c(), prog).unwrap();
        m.attach_ckpt_sink(Box::new(move |seq, _at, text| {
            sink.lock().unwrap().push((seq, text.to_string()));
        }));
        let result = m.run().unwrap();
        drop(m); // the sink closure holds the other Arc
        let ckpts = Arc::try_unwrap(ckpts).unwrap().into_inner().unwrap();
        (result, ckpts)
    }

    #[test]
    fn checkpoint_sink_does_not_perturb_the_run() {
        let prog = small_prog(2);
        let c = || cfg(2, mipsy(150), OsModel::simos_tuned(), fl());
        let plain = run_program(c(), &prog).unwrap();
        let (observed, ckpts) = run_with_ckpts(&c, &prog);
        assert_eq!(plain.total_time, observed.total_time);
        assert_eq!(plain.stats, observed.stats);
        assert_eq!(ckpts.len(), 3, "one checkpoint per barrier release");
        for (i, (seq, _)) in ckpts.iter().enumerate() {
            assert_eq!(*seq, i as u64);
        }
    }

    #[test]
    fn restore_from_any_barrier_finishes_byte_identical() {
        let prog = small_prog(2);
        let c = || cfg(2, mipsy(150), OsModel::simos_tuned(), fl());
        let (straight, ckpts) = run_with_ckpts(&c, &prog);
        for (seq, text) in &ckpts {
            let mut m = Machine::restore(c(), &prog, text).unwrap();
            let resumed = m.run().unwrap();
            assert_eq!(resumed.total_time, straight.total_time, "ckpt {seq}");
            assert_eq!(resumed.parallel_time, straight.parallel_time, "ckpt {seq}");
            assert_eq!(resumed.ops_per_node, straight.ops_per_node, "ckpt {seq}");
            assert_eq!(resumed.stats, straight.stats, "ckpt {seq}");
            assert_eq!(
                resumed.barrier_releases, straight.barrier_releases,
                "ckpt {seq}"
            );
        }
    }

    #[test]
    fn restore_rejects_wrong_identity_and_corruption() {
        use flashsim_engine::CkptError;
        let prog = small_prog(2);
        let c = || cfg(2, mipsy(150), OsModel::simos_tuned(), fl());
        let (_, ckpts) = run_with_ckpts(&c, &prog);
        let text = &ckpts[0].1;

        // Different platform => provenance mismatch, not a mis-restore.
        let other = cfg(2, mipsy(300), OsModel::simos_tuned(), fl());
        let err = Machine::restore(other, &prog, text).expect_err("wrong clock");
        assert!(
            matches!(&err, RestoreError::Ckpt(CkptError::ManifestMismatch { .. })),
            "got {err}"
        );

        // A truncated file fails closed before any state is trusted.
        let cut = &text[..text.len() / 2];
        let err = Machine::restore(c(), &prog, cut).expect_err("truncated");
        assert!(matches!(err, RestoreError::Ckpt(_)), "got {err}");

        // A flipped payload byte fails the checksum.
        let corrupt = text.replacen("consumed=", "consumed=9", 1);
        let err = Machine::restore(c(), &prog, &corrupt).expect_err("corrupt");
        assert!(
            matches!(&err, RestoreError::Ckpt(CkptError::ChecksumMismatch { .. })),
            "got {err}"
        );
    }

    #[test]
    fn restored_run_continues_checkpoint_numbering() {
        use std::sync::{Arc, Mutex};
        let prog = small_prog(2);
        let c = || cfg(2, mipsy(150), OsModel::simos_tuned(), fl());
        let (_, ckpts) = run_with_ckpts(&c, &prog);
        // Resume from the first checkpoint with a fresh sink: the next
        // emission must carry seq 1, not restart at 0.
        let mut m = Machine::restore(c(), &prog, &ckpts[0].1).unwrap();
        let seqs: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seqs);
        m.attach_ckpt_sink(Box::new(move |seq, _at, _text| {
            sink.lock().unwrap().push(seq);
        }));
        m.run().unwrap();
        assert_eq!(*seqs.lock().unwrap(), vec![1, 2]);
    }

    #[test]
    fn wall_clock_timeout_trips_as_structured_timeout() {
        let mut c = cfg(2, mipsy(150), OsModel::solo(), fl());
        c.watchdog = Watchdog::default().with_wall_limit(std::time::Duration::ZERO);
        let err = run_program(c, &small_prog(2)).expect_err("zero wall budget");
        let SimError::Timeout {
            elapsed,
            budget,
            nodes,
            ..
        } = &err
        else {
            panic!("expected Timeout, got {err}");
        };
        assert!(*elapsed >= *budget);
        assert_eq!(nodes.len(), 2);
        assert_eq!(err.kind(), "timeout");
    }

    #[test]
    fn dir_pool_pressure_forces_reclaims() {
        use flashsim_engine::FaultPlan;
        // All four nodes read the same node-0 lines so the directory
        // chains sharers; a 1-slot pool must reclaim.
        struct SharedRead;
        impl Program for SharedRead {
            fn name(&self) -> String {
                "shared-read".into()
            }
            fn num_threads(&self) -> usize {
                4
            }
            fn segments(&self) -> Vec<Segment> {
                vec![Segment::new(
                    "d",
                    VAddr(BASE),
                    64 * 1024,
                    Placement::Node(0),
                )]
            }
            fn thread_body(&self, _tid: usize) -> Box<dyn FnOnce(&mut Sink) + Send + 'static> {
                Box::new(|sink| {
                    for i in (0..64 * 1024u64).step_by(128) {
                        sink.load(VAddr(BASE + i));
                    }
                })
            }
        }
        let mut c = cfg(4, mipsy(150), OsModel::solo(), fl());
        c.faults = Some(FaultPlan {
            dir_pool_cap: Some(1),
            ..FaultPlan::default()
        });
        let r = run_program(c, &SharedRead).unwrap();
        assert!(
            r.stats.get_or_zero("proto.dir_reclaims") > 0.0,
            "pool cap 1 must reclaim: {}",
            r.stats
        );
    }
}
