//! Machine configuration: processor model × environment × memory system ×
//! geometry.
//!
//! A [`MachineConfig`] pins down everything Table 1 of the paper lists,
//! plus which simulator fidelity fills each role. The gold standard and
//! every simulator under validation are just different configs over the
//! same machinery.
//!
//! Two geometries are provided: [`MachineGeometry::flash`] is the real
//! Table-1 machine, and [`MachineGeometry::scaled`] is a proportionally
//! shrunk machine (caches, TLB reach, and datasets shrink together) that
//! keeps every regime the paper's effects depend on — dataset ≫ L2, TLB
//! reach ≪ matrix row span, unchanged miss latencies — while making the
//! full validation matrix run in seconds. EXPERIMENTS.md records which
//! geometry each experiment used.

use crate::error::Watchdog;
use flashsim_cpu::{Mipsy, MipsyConfig, OooConfig, OooCore};
use flashsim_engine::{Clock, FaultPlan, TimeDelta};
use flashsim_flashlite::{FlashLite, FlashLiteParams};
use flashsim_mem::{CacheGeometry, MemorySystem};
use flashsim_numa::{Numa, NumaParams};
use flashsim_os::OsModel;
use std::fmt;

/// Which processor model drives each node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CpuModel {
    /// Mipsy at a given clock (150/225/300 MHz), optionally with the
    /// §3.1.3 instruction-latency ablation enabled.
    Mipsy {
        /// Core clock in MHz.
        mhz: u32,
        /// Charge real mul/div/FP latencies (ablation only).
        model_int_latencies: bool,
        /// Tuned-in secondary-cache interface occupancy (§3.1.2).
        l2_iface: Option<TimeDelta>,
    },
    /// The generic 4-issue out-of-order model.
    Mxs,
    /// The Embra functional model: one cycle per op, no memory modelling
    /// — for positioning/validating workloads only, never for timing
    /// (the paper's §2.2 caveat, enforced by construction).
    Embra,
    /// The gold-standard R10000 (OOO plus implementation constraints).
    R10000,
}

impl CpuModel {
    /// The core clock this model runs at.
    pub fn clock(&self) -> Clock {
        match self {
            CpuModel::Mipsy { mhz, .. } => Clock::from_mhz(*mhz),
            CpuModel::Mxs | CpuModel::R10000 | CpuModel::Embra => Clock::from_mhz(150),
        }
    }

    /// Builds one core instance.
    pub fn build(&self) -> Box<dyn flashsim_cpu::Core> {
        match self {
            CpuModel::Mipsy {
                mhz,
                model_int_latencies,
                l2_iface,
            } => {
                let mut cfg = MipsyConfig::at_mhz(*mhz);
                cfg.model_int_latencies = *model_int_latencies;
                cfg.l2_interface_transfer = *l2_iface;
                Box::new(Mipsy::new(cfg))
            }
            CpuModel::Mxs => Box::new(OooCore::new(OooConfig::mxs(), "mxs")),
            CpuModel::R10000 => Box::new(OooCore::new(OooConfig::r10000(), "r10000")),
            CpuModel::Embra => Box::new(flashsim_cpu::Embra::new(Clock::from_mhz(150))),
        }
    }

    /// A short display label (`"mipsy-225"`, `"mxs"`, `"r10000"`).
    pub fn label(&self) -> String {
        match self {
            CpuModel::Mipsy {
                mhz,
                model_int_latencies,
                ..
            } => {
                if *model_int_latencies {
                    format!("mipsy-{mhz}+lat")
                } else {
                    format!("mipsy-{mhz}")
                }
            }
            CpuModel::Mxs => "mxs".to_owned(),
            CpuModel::R10000 => "r10000".to_owned(),
            CpuModel::Embra => "embra".to_owned(),
        }
    }
}

/// Which memory-system model sits below the secondary caches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MemSysKind {
    /// The detailed FlashLite model with the given parameter set.
    FlashLite(FlashLiteParams),
    /// The generic latency-only NUMA model.
    Numa(NumaParams),
}

impl MemSysKind {
    /// Builds the memory system for `nodes` nodes of `node_mem_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if FlashLite is requested with a non-power-of-two node count.
    pub fn build(&self, nodes: u32, node_mem_bytes: u64) -> Box<dyn MemorySystem> {
        match self {
            MemSysKind::FlashLite(p) => Box::new(
                FlashLite::new(nodes, node_mem_bytes, *p)
                    .expect("FlashLite requires a power-of-two node count"), // gate: allow
            ),
            MemSysKind::Numa(p) => Box::new(Numa::new(nodes, node_mem_bytes, *p)),
        }
    }

    /// A short display label.
    pub fn label(&self) -> &'static str {
        match self {
            MemSysKind::FlashLite(_) => "flashlite",
            MemSysKind::Numa(_) => "numa",
        }
    }
}

/// Cache/TLB/memory geometry of the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineGeometry {
    /// Primary data cache.
    pub l1: CacheGeometry,
    /// Secondary unified cache.
    pub l2: CacheGeometry,
    /// Page size in bytes.
    pub page_bytes: u64,
    /// Physical memory per node.
    pub node_mem_bytes: u64,
    /// TLB entries (overrides the OS model's default when smaller
    /// machines are scaled).
    pub tlb_entries: usize,
}

impl MachineGeometry {
    /// The FLASH hardware of Table 1: 32 KB/32 B L1D, 2 MB/128 B 2-way L2,
    /// 4 KB pages, 64-entry TLB.
    pub fn flash() -> MachineGeometry {
        MachineGeometry {
            l1: CacheGeometry::new(32 * 1024, 32, 2),
            l2: CacheGeometry::new(2 * 1024 * 1024, 128, 2),
            page_bytes: 4096,
            node_mem_bytes: 256 << 20,
            tlb_entries: 64,
        }
    }

    /// A 1/8-scale machine preserving all the paper's regimes; used by
    /// the fast experiment matrix (datasets are scaled to match in
    /// `flashsim-workloads`).
    pub fn scaled() -> MachineGeometry {
        MachineGeometry {
            l1: CacheGeometry::new(8 * 1024, 32, 2),
            l2: CacheGeometry::new(256 * 1024, 128, 2),
            page_bytes: 4096,
            node_mem_bytes: 32 << 20,
            tlb_entries: 16,
        }
    }

    /// Number of L2 page colours (way size / page size) — what the frame
    /// allocators colour against.
    pub fn colors(&self) -> u64 {
        let way_bytes = self.l2.bytes / u64::from(self.l2.ways);
        (way_bytes / self.page_bytes).max(1)
    }

    /// Physical frames per node.
    pub fn frames_per_node(&self) -> u64 {
        self.node_mem_bytes / self.page_bytes
    }
}

/// How the machine driver schedules node execution.
///
/// Every policy produces bit-identical results — `tests/sched_equivalence.rs`
/// asserts it on every platform. `Reference` exists as the oracle for that
/// proof and for debugging; `Batched` is the serial production hot path;
/// `Parallel` shards node batches across host worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// Conservative lookahead batching over a laggard min-heap: the
    /// trailing node executes a run of ops per scheduling decision
    /// (bounded by shared-resource touches and the runner-up's clock plus
    /// the memory model's minimum shared-interaction latency).
    #[default]
    Batched,
    /// The historical one-op-per-decision schedule (`quantum = 1`,
    /// linear `min_by_key` laggard scan).
    Reference,
    /// Fork/join rounds over a host worker pool: every node whose next
    /// shared interaction provably lies beyond the conservative horizon
    /// executes its private ops concurrently; everything shared runs in
    /// the serial batched order. Output is byte-identical to the other
    /// policies at every worker count.
    Parallel {
        /// Host worker threads (`0` = one per available host core). The
        /// count shapes only wall-clock speed, never simulated results,
        /// and is deliberately excluded from [`SchedPolicy::key`] — so
        /// checkpoint/stream provenance is worker-count-invariant and a
        /// run may be restored under a different worker count.
        workers: usize,
    },
}

impl SchedPolicy {
    /// A short machine-readable label (`"batched"` / `"reference"` /
    /// `"parallel"`), recorded in run manifests.
    pub fn key(&self) -> &'static str {
        match self {
            SchedPolicy::Batched => "batched",
            SchedPolicy::Reference => "reference",
            SchedPolicy::Parallel { .. } => "parallel",
        }
    }
}

/// A complete machine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Number of nodes (one processor per node).
    pub nodes: u32,
    /// Processor model.
    pub cpu: CpuModel,
    /// OS environment model.
    pub os: OsModel,
    /// Memory-system model.
    pub memsys: MemSysKind,
    /// Cache/memory geometry.
    pub geometry: MachineGeometry,
    /// Secondary-cache hit service time.
    pub l2_hit: TimeDelta,
    /// Barrier release overhead: `base + per_node × nodes`.
    pub barrier_base: TimeDelta,
    /// Per-node component of barrier overhead.
    pub barrier_per_node: TimeDelta,
    /// Forward-progress watchdog (default: unbounded).
    pub watchdog: Watchdog,
    /// Fault plan injected into the run (default: none).
    pub faults: Option<FaultPlan>,
    /// Scheduling policy (default: lookahead-batched).
    pub sched: SchedPolicy,
    /// Sim-time telemetry sampling cadence (default: disabled). When set,
    /// the machine attaches an enabled [`flashsim_engine::Telemetry`] with
    /// this bucket width at construction and the run result carries the
    /// sampled series.
    pub telemetry: Option<TimeDelta>,
    /// Attach a cycle-accounting profiler at construction (default:
    /// off), so matrix-driven runs can carry accounting without the
    /// caller holding the [`crate::Machine`].
    pub profile: bool,
    /// Live stderr heartbeat interval (host wall-clock; default: off).
    pub heartbeat: Option<std::time::Duration>,
    /// Causal span-tracer sampling plan (default: disabled). When set,
    /// the machine attaches an enabled [`flashsim_engine::SpanTracer`]
    /// at construction, records the plan in the run manifest, and the
    /// run result carries the sampled span trees.
    pub spans: Option<flashsim_engine::SpanPlan>,
    /// Path of the live `flashsim-stream-v1` event file (default: none).
    /// When set, the machine opens a durable
    /// [`flashsim_engine::FileSink`] at run start — creating the file
    /// for a fresh run, appending for a restored one — and emits the
    /// stream protocol into it. A host-side observability knob:
    /// excluded from the provenance string, so streams from reruns of
    /// the same cell share a provenance hash and can be prefix-checked
    /// against each other.
    pub stream: Option<std::path::PathBuf>,
    /// Attach a host-time self-profiler at construction (default: off).
    /// When set, the machine drives an enabled
    /// [`flashsim_engine::HostProf`] through its scheduling loops and
    /// the run result carries the finalized
    /// [`flashsim_engine::HostReport`]. A host-side observability knob
    /// like `stream`: host clock reads never feed simulated state, so it
    /// is excluded from the provenance string and attachment changes
    /// zero simulated bytes (`tests/hostprof_isolation.rs`).
    pub hostprof: bool,
}

impl MachineConfig {
    /// A config with the paper's fixed structural values filled in;
    /// callers choose node count, models, and geometry.
    pub fn new(
        nodes: u32,
        cpu: CpuModel,
        os: OsModel,
        memsys: MemSysKind,
        geometry: MachineGeometry,
    ) -> MachineConfig {
        MachineConfig {
            nodes,
            cpu,
            os: os.with_tlb_entries(geometry.tlb_entries),
            memsys,
            geometry,
            l2_hit: TimeDelta::from_ns(60),
            barrier_base: TimeDelta::from_us(2),
            barrier_per_node: TimeDelta::from_ns(300),
            watchdog: Watchdog::default(),
            faults: None,
            sched: SchedPolicy::default(),
            telemetry: None,
            profile: false,
            heartbeat: None,
            spans: None,
            stream: None,
            hostprof: false,
        }
    }

    /// Display label like `"simos-mipsy-225/flashlite"`.
    pub fn label(&self) -> String {
        format!(
            "{}-{}/{}",
            self.os.name,
            self.cpu.label(),
            self.memsys.label()
        )
    }
}

impl fmt::Display for MachineConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} x{}", self.label(), self.nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_model_clocks() {
        assert_eq!(
            CpuModel::Mipsy {
                mhz: 225,
                model_int_latencies: false,
                l2_iface: None
            }
            .clock()
            .mhz(),
            225
        );
        assert_eq!(CpuModel::Mxs.clock().mhz(), 150);
        assert_eq!(CpuModel::R10000.clock().mhz(), 150);
    }

    #[test]
    fn labels_are_informative() {
        let m = CpuModel::Mipsy {
            mhz: 300,
            model_int_latencies: false,
            l2_iface: None,
        };
        assert_eq!(m.label(), "mipsy-300");
        let ml = CpuModel::Mipsy {
            mhz: 225,
            model_int_latencies: true,
            l2_iface: None,
        };
        assert_eq!(ml.label(), "mipsy-225+lat");
        assert_eq!(CpuModel::Mxs.label(), "mxs");
    }

    #[test]
    fn flash_geometry_matches_table1() {
        let g = MachineGeometry::flash();
        assert_eq!(g.l1.bytes, 32 * 1024);
        assert_eq!(g.l1.line_bytes, 32);
        assert_eq!(g.l2.bytes, 2 * 1024 * 1024);
        assert_eq!(g.l2.line_bytes, 128);
        assert_eq!(g.tlb_entries, 64);
        assert_eq!(g.colors(), 256);
    }

    #[test]
    fn scaled_geometry_preserves_color_structure() {
        let g = MachineGeometry::scaled();
        assert_eq!(g.colors(), 32);
        assert!(g.frames_per_node() >= 1024);
    }

    #[test]
    fn builders_construct_models() {
        let core = CpuModel::Mxs.build();
        assert_eq!(core.model_name(), "mxs");
        let core = CpuModel::R10000.build();
        assert_eq!(core.model_name(), "r10000");
        let ms = MemSysKind::FlashLite(FlashLiteParams::hardware()).build(4, 1 << 24);
        assert_eq!(ms.model_name(), "flashlite");
        let ms = MemSysKind::Numa(NumaParams::matched()).build(4, 1 << 24);
        assert_eq!(ms.model_name(), "numa");
    }

    #[test]
    fn config_label_combines_parts() {
        let cfg = MachineConfig::new(
            4,
            CpuModel::Mipsy {
                mhz: 225,
                model_int_latencies: false,
                l2_iface: None,
            },
            OsModel::simos_tuned(),
            MemSysKind::FlashLite(FlashLiteParams::hardware()),
            MachineGeometry::scaled(),
        );
        assert_eq!(cfg.label(), "simos-mipsy-225/flashlite");
        assert!(format!("{cfg}").contains("x4"));
    }

    #[test]
    fn config_applies_geometry_tlb_to_os() {
        let cfg = MachineConfig::new(
            1,
            CpuModel::R10000,
            OsModel::irix_hardware(),
            MemSysKind::FlashLite(FlashLiteParams::hardware()),
            MachineGeometry::scaled(),
        );
        match cfg.os.tlb {
            flashsim_os::TlbModel::Modeled { entries, .. } => assert_eq!(entries, 16),
            flashsim_os::TlbModel::None => panic!(),
        }
    }
}
