//! The full-machine simulation driver.
//!
//! A [`Machine`] wires N processor cores (any model) to per-node cache
//! hierarchies and TLBs, a shared page table with an OS-policy frame
//! allocator, and one memory-system model, then executes a
//! [`Program`]'s op streams to completion. Scheduling is laggard-first:
//! the node with the smallest local clock executes next, which keeps the
//! shared occupancy timelines (MAGIC, banks, links) causally consistent
//! across nodes.
//!
//! Two scheduling policies implement that discipline (see
//! [`SchedPolicy`]): the `Reference` policy re-derives the laggard by
//! linear scan before every single op, while the default `Batched` policy
//! keeps node clocks in a [`LaggardHeap`] and lets the popped laggard
//! execute a *run* of ops per decision — ending the run before any op
//! that touches shared state unless the node is still the strict schedule
//! winner, and bounding private-op overrun by the runner-up's clock plus
//! the memory model's minimum shared-interaction latency (conservative
//! lookahead). Every shared interaction therefore happens in exactly the
//! order the reference policy would produce, and the two policies are
//! bit-identical in stats, accounting, and times (asserted by
//! `tests/sched_equivalence.rs`; DESIGN.md details the argument).
//!
//! Synchronization is handled here, not in the cores: barriers collect all
//! nodes and release them together (with a size-dependent overhead), and
//! locks serialize holders, with every hand-off performing a *real*
//! read-exclusive coherence transaction on the lock's cache line — so lock
//! and barrier costs scale with the memory system being simulated, as on
//! the real machine.

use crate::config::{MachineConfig, MemSysKind, SchedPolicy};
use crate::error::{NodeSnapshot, NodeState, SimError};
use flashsim_cpu::env::{AccessLevel, Core, MemAccessKind, MemEnv, Resolution, ScanProfile};
use flashsim_engine::fxhash::FxHashMap;
use flashsim_engine::stream::{FileSink, ProgressMeter, RunInfo, StreamEmitter, StreamSink};
use flashsim_engine::{
    Accounting, CkptError, CkptReader, CkptWriter, Clock, FaultInjector, HostPhase, HostProf,
    HostReport, LaggardHeap, MetricId, MetricKind, Profiler, RoundTally, SpanSet, SpanTracer,
    StallClass, StatSet, Telemetry, TelemetrySeries, Time, TimeDelta, TraceCategory, Tracer,
    WorkerPool,
};
use flashsim_isa::{check_segments, OpClass, Placement, Program, Segment, ThreadStream, VAddr};
use flashsim_mem::{
    AccessKind, CacheHierarchy, FrameAllocator, HierProbe, LatencyBreakdown, LineAddr, MemRequest,
    MemorySystem, PageTable, Tlb,
};
use flashsim_os::TlbModel;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Error constructing or running a machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// Program thread count does not match the node count.
    ThreadMismatch {
        /// Threads the program wants.
        program: usize,
        /// Nodes the machine has.
        nodes: u32,
    },
    /// The program's segment declaration is invalid.
    BadSegments(String),
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::ThreadMismatch { program, nodes } => write!(
                f,
                "program has {program} threads but the machine has {nodes} nodes"
            ),
            MachineError::BadSegments(msg) => write!(f, "invalid segments: {msg}"),
        }
    }
}

impl std::error::Error for MachineError {}

/// Per-node memory-side state.
#[derive(Debug)]
struct NodeMem {
    hier: CacheHierarchy,
    tlb: Option<Tlb>,
    /// In-flight line fills: probes to these lines wait for arrival.
    /// The breakdown of the originating transaction rides along so an
    /// exposed wait (e.g. a demand load catching up to its prefetch) can
    /// be attributed to the same stall classes pro rata.
    // Checked on every memory reference; point lookups only (never
    // iterated), so the fast fixed-seed hasher is behaviour-neutral.
    pending: FxHashMap<LineAddr, (Time, LatencyBreakdown)>,
    page_faults: u64,
    tlb_refills: u64,
    next_tick: Time,
    /// Whether the parallel policy's cached lookahead bound for this node
    /// is stale. Only alien coherence actions (an invalidate or downgrade
    /// from another node's transaction) can move a node's first shared
    /// access *earlier* than a prior scan concluded, so this is set
    /// exactly there; the node's own execution can only push the bound
    /// out (per-node op keys are monotone), which keeps a stale bound
    /// conservative but sound.
    lb_dirty: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeStatus {
    Running,
    AtBarrier(u32),
    WaitingLock(u32),
    /// Halted by stalled-node fault injection; never scheduled again.
    Stalled,
    Done,
}

/// Why a batched run of ops on one node ended (see
/// [`Machine::run_batch`]). Budget exhaustion and program faults surface
/// as errors instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BatchEnd {
    /// The node is still runnable but no longer the schedule winner.
    Reschedule,
    /// The node hit a sync op (executed by the caller's arm): barrier or
    /// lock state changed, possibly waking other nodes.
    Sync,
    /// The node left the Running set (stream end or injected stall).
    Parked,
}

#[derive(Debug, Default)]
struct LockState {
    held_by: Option<usize>,
    /// Waiters in arrival order, with the time each started waiting (for
    /// synchronization-stall accounting).
    queue: Vec<(usize, Time)>,
}

/// Metric ids for the machine layer's own telemetry probes. All
/// [`MetricId::NONE`] until [`Machine::attach_telemetry`]; each probe
/// site then costs exactly the registry handle's disabled-path branch.
#[derive(Debug, Clone, Copy)]
struct TelIds {
    l1_hits: MetricId,
    l1_misses: MetricId,
    l2_hits: MetricId,
    l2_misses: MetricId,
    pending_depth: MetricId,
    barrier_skew: MetricId,
    /// Scheduler-internal (volatile: excluded from the stable export
    /// because batching reshapes it by design).
    sched_batches: MetricId,
    /// Scheduler-internal (volatile): ops admitted per batch.
    sched_batch_ops: MetricId,
    /// Scheduler-internal (volatile): runnable nodes in the laggard heap.
    sched_heap: MetricId,
}

impl TelIds {
    fn none() -> TelIds {
        TelIds {
            l1_hits: MetricId::NONE,
            l1_misses: MetricId::NONE,
            l2_hits: MetricId::NONE,
            l2_misses: MetricId::NONE,
            pending_depth: MetricId::NONE,
            barrier_skew: MetricId::NONE,
            sched_batches: MetricId::NONE,
            sched_batch_ops: MetricId::NONE,
            sched_heap: MetricId::NONE,
        }
    }
}

/// Live progress, throttled by host wall-clock time. The scheduling
/// loops tick it once per decision; the `Instant` read is amortized to
/// once per 4096 ticks so an attached-but-quiet heartbeat stays off the
/// hot path. The windowed rate/budget computation lives in the shared
/// [`ProgressMeter`], so the stderr line and the stream's advisory
/// `progress` events can never report different numbers.
struct Heartbeat {
    every: std::time::Duration,
    /// Whether to print the stderr line (false for the silent
    /// stream-only heartbeat a stream sink auto-attaches).
    stderr: bool,
    ticks: u64,
    meter: ProgressMeter,
    /// Baseline for the parallel policy's worker-occupancy fraction:
    /// `(wall instant, cumulative busy ns across workers)` at the last
    /// emitted sample. `None` until the first sample under a worker
    /// pool (the fraction needs a window to average over).
    last_busy: Option<(std::time::Instant, u64)>,
    /// Per-worker counterpart of `last_busy`: cumulative busy ns per
    /// worker at the last emitted sample, for the advisory per-worker
    /// utilization array on progress events. Empty until the first
    /// sample under a worker pool.
    last_worker: Vec<u64>,
}

/// The environment one node's core executes against (see
/// [`flashsim_cpu::env::MemEnv`]).
struct MachineEnv<'a> {
    node: usize,
    mems: &'a mut [NodeMem],
    memsys: &'a mut dyn MemorySystem,
    pt: &'a mut PageTable,
    alloc: &'a mut FrameAllocator,
    segments: &'a [Segment],
    cfg: &'a MachineConfig,
    clock: Clock,
    tracer: Tracer,
    faults: &'a FaultInjector,
    profiler: Profiler,
    telemetry: Telemetry,
    spans: SpanTracer,
    tel: TelIds,
    /// Whether the current resolution happens inside a core op (charges
    /// subtract from that op's compute residual) or between ops (lock
    /// hand-offs: wall charges).
    in_op: bool,
    /// Failure slot: `MemEnv::resolve` cannot return an error through the
    /// core's execute path, so faults are parked here and harvested by the
    /// scheduler immediately after the op completes.
    fault: &'a mut Option<SimError>,
}

impl MachineEnv<'_> {
    /// The node whose memory should back `addr`, per the containing
    /// segment's placement request.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnmappedAddress`] if no declared segment
    /// contains `addr`.
    fn placement_node(&self, addr: VAddr) -> Result<u32, SimError> {
        let Some(seg) = self.segments.iter().find(|s| s.contains(addr)) else {
            return Err(SimError::UnmappedAddress {
                node: self.node as u32,
                addr,
            });
        };
        let nodes = u64::from(self.cfg.nodes);
        Ok(match seg.placement {
            Placement::Node(n) => n.min(self.cfg.nodes - 1),
            Placement::Blocked => {
                let off = addr.get() - seg.base.get();
                ((off * nodes / seg.bytes) as u32).min(self.cfg.nodes - 1)
            }
            Placement::Interleaved => (addr.vpn(self.cfg.geometry.page_bytes) % nodes) as u32,
        })
    }

    /// Translates `addr`, handling TLB misses and first-touch page faults.
    /// Returns the physical address, the TLB-refill time charged, and the
    /// page-fault time charged.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnmappedAddress`] for addresses outside every
    /// declared segment and [`SimError::OutOfPhysicalMemory`] when the
    /// frame allocator cannot back the page.
    fn translate(
        &mut self,
        addr: VAddr,
    ) -> Result<(flashsim_mem::PAddr, TimeDelta, TimeDelta), SimError> {
        let page_bytes = self.cfg.geometry.page_bytes;
        let vpn = addr.vpn(page_bytes);

        let mut fault_cost = TimeDelta::ZERO;
        let pfn = match self.pt.lookup(vpn) {
            Some(pfn) => pfn,
            None => {
                let home = self.placement_node(addr)?;
                let Some(pfn) = self.alloc.alloc(home, vpn) else {
                    return Err(SimError::OutOfPhysicalMemory {
                        node: self.node as u32,
                        home,
                        vpn,
                    });
                };
                self.pt.map(vpn, pfn);
                self.mems[self.node].page_faults += 1;
                fault_cost = self.cfg.os.page_fault_cost;
                pfn
            }
        };

        let mut refill = TimeDelta::ZERO;
        if let TlbModel::Modeled { refill_cycles, .. } = self.cfg.os.tlb {
            let tlb = self.mems[self.node]
                .tlb
                .as_mut()
                .expect("TLB modelled but absent"); // gate: allow
            if tlb.translate(addr).is_none() {
                tlb.insert(vpn, pfn);
                refill = self.clock.cycles(refill_cycles);
                self.mems[self.node].tlb_refills += 1;
            }
        }
        Ok((
            flashsim_mem::addr::translate(addr, pfn, page_bytes),
            refill,
            fault_cost,
        ))
    }

    /// Charges `dur` starting at `at` to `class` on this node, as an
    /// in-op or wall charge depending on the resolution context. The
    /// environment is the single charging authority for memory latency,
    /// TLB refills, and OS costs exposed to the core; cores charge only
    /// their internal pipeline stalls, so no span is charged twice.
    fn account(&self, class: StallClass, at: Time, dur: TimeDelta) {
        if dur.is_zero() {
            return;
        }
        if self.in_op {
            self.profiler.charge(self.node as u32, class, at, dur);
        } else {
            self.profiler.charge_wall(self.node as u32, class, at, dur);
        }
    }

    /// Splits an exposed wait on an in-flight fill (a demand access
    /// catching up to its prefetch or an earlier store's fill) across the
    /// originating transaction's own stall classes, pro rata to its
    /// latency breakdown — so prefetched remote traffic still surfaces
    /// its network and occupancy components instead of reading as plain
    /// L2 miss time. Integer floor division keeps it deterministic; the
    /// rounding remainder lands in the memory (L2 miss) share.
    fn charge_exposed_wait(&self, at: Time, wait: TimeDelta, bd: LatencyBreakdown) {
        let total = bd.total().as_ps();
        if total == 0 {
            self.account(StallClass::L2Miss, at, wait);
            return;
        }
        let w = wait.as_ps() as u128;
        let part =
            |p: TimeDelta| TimeDelta::from_ps((w * p.as_ps() as u128 / total as u128) as u64);
        let occ = part(bd.occupancy);
        let net = part(bd.network);
        self.account(StallClass::DirOccupancy, at, occ);
        self.account(StallClass::NetTransit, at, net);
        self.account(StallClass::L2Miss, at, wait - occ - net);
    }

    /// Applies directory-mandated coherence actions to the *other* nodes.
    fn apply_actions(&mut self, line: LineAddr, actions: &flashsim_mem::CoherenceActions) {
        for &v in &actions.invalidate {
            if v as usize != self.node {
                self.mems[v as usize].hier.invalidate_line(line);
                self.mems[v as usize].pending.remove(&line);
                self.mems[v as usize].lb_dirty = true;
            }
        }
        if let Some(v) = actions.downgrade {
            if v as usize != self.node {
                self.mems[v as usize].hier.downgrade_line(line);
                self.mems[v as usize].lb_dirty = true;
            }
        }
    }

    /// Opens a span transaction rooted at the issuing access (if this
    /// access is sampled) and records the machine-side legs — TLB refill
    /// and page fault — that precede the memory-system transaction.
    /// Returns whether the access was sampled.
    fn span_txn_open(
        &mut self,
        line: LineAddr,
        kind: MemAccessKind,
        at: Time,
        refill: TimeDelta,
        fault: TimeDelta,
    ) -> bool {
        let node = self.node as u32;
        if !self.spans.txn_try_begin(node, line.get(), kind.key(), at) {
            return false;
        }
        if refill > TimeDelta::ZERO {
            self.spans
                .leg("tlb_refill", node, at, at + refill, None, refill);
        }
        if fault > TimeDelta::ZERO {
            self.spans.leg(
                "page_fault",
                node,
                at + refill,
                at + refill + fault,
                None,
                fault,
            );
        }
        true
    }

    /// Emits the paired `span`-category flow events (begin at issue, end
    /// at completion) for a sampled transaction, so exported Chrome
    /// traces draw an arrow across the transaction's extent. The id is
    /// derived deterministically from (node, line, issue time).
    fn span_mark(&mut self, line: LineAddr, at: Time, done: Time) {
        if !self.tracer.enabled(TraceCategory::Span) {
            return;
        }
        let node = self.node as u32;
        let id = flashsim_engine::span::mix(line.get() ^ (u64::from(node) << 40) ^ at.as_ps());
        self.tracer
            .emit(at, TraceCategory::Span, "span_begin", node, id, line.get());
        self.tracer
            .emit(done, TraceCategory::Span, "span_end", node, id, line.get());
    }

    /// Issues a full memory-system transaction and installs the line.
    fn miss_transaction(
        &mut self,
        paddr: flashsim_mem::PAddr,
        write: bool,
        t: Time,
    ) -> (Time, AccessLevel, LatencyBreakdown) {
        let line = self.mems[self.node].hier.l2_line(paddr);
        let kind = if write {
            AccessKind::ReadExclusive
        } else {
            AccessKind::ReadShared
        };
        let mut out = self.memsys.access(MemRequest {
            node: self.node as u32,
            line,
            kind,
            now: t,
        });
        let perturb = self.faults.perturb_latency(out.done_at - t);
        let pre_perturb = out.done_at;
        out.done_at += perturb;
        // Injected latency perturbation reads as extra memory time.
        out.breakdown.memory += perturb;
        if perturb > TimeDelta::ZERO {
            self.spans.leg(
                "fault_perturb",
                self.node as u32,
                pre_perturb,
                out.done_at,
                Some(flashsim_engine::SpanClass::Memory),
                perturb,
            );
        }
        // Close the sampled span tree (no-op when this access was not
        // sampled) BEFORE the victim writeback below, so background
        // writeback legs never attach to the demand transaction.
        self.spans.txn_end(out.done_at, out.case.key());
        self.apply_actions(line, &out.actions);
        let victim = self.mems[self.node]
            .hier
            .fill_from_memory(paddr, write, out.exclusive);
        if let Some(v) = victim {
            if v.dirty {
                // Background writeback of the displaced dirty line.
                let _ = self.memsys.access(MemRequest {
                    node: self.node as u32,
                    line: v.line,
                    kind: AccessKind::Writeback,
                    now: out.done_at,
                });
                if self.tracer.enabled(TraceCategory::Mem) {
                    self.tracer.emit(
                        out.done_at,
                        TraceCategory::Mem,
                        "writeback",
                        self.node as u32,
                        v.line.get(),
                        0,
                    );
                }
            }
            self.mems[self.node].pending.remove(&v.line);
        }
        self.mems[self.node]
            .pending
            .insert(line, (out.done_at, out.breakdown));
        self.telemetry.gauge(
            self.tel.pending_depth,
            t,
            self.mems[self.node].pending.len() as u64,
        );
        (out.done_at, AccessLevel::Memory(out.case), out.breakdown)
    }
}

impl MemEnv for MachineEnv<'_> {
    fn resolve(&mut self, addr: VAddr, kind: MemAccessKind, at: Time) -> Resolution {
        let (paddr, refill, fault) = match self.translate(addr) {
            Ok(v) => v,
            Err(e) => {
                // The core's execute path has no error channel; park the
                // failure and return a zero-cost resolution — the
                // scheduler aborts the run before the next op.
                *self.fault = Some(e);
                return Resolution {
                    done_at: at,
                    level: AccessLevel::L1,
                    tlb_refill: TimeDelta::ZERO,
                };
            }
        };
        let t = at + refill + fault;
        let write = kind == MemAccessKind::Write;

        // The refill handler and fault path run on the pipeline for loads
        // and stores alike; prefetches that miss the TLB are dropped by
        // real hardware, so their costs are not demand stalls.
        if kind != MemAccessKind::Prefetch {
            self.account(StallClass::TlbRefill, at, refill);
            self.account(StallClass::Os, at + refill, fault);
        }
        // Memory latency below is charged for blocking demand reads only:
        // store and prefetch latency is overlapped by write buffers and
        // prefetch slots, and the portion that *isn't* hidden surfaces as
        // core-internal stalls the core models charge themselves.
        let demand_read = kind == MemAccessKind::Read;

        let probe = self.mems[self.node].hier.probe(paddr, write);

        // Hit/miss telemetry counters are bucket-summed, so recording
        // them here — covering the fast path below too — is safe under
        // either scheduling policy (per-window sums commute).
        match probe {
            HierProbe::L1Hit => self.telemetry.count(self.tel.l1_hits, t, 1),
            HierProbe::L2Hit => {
                self.telemetry.count(self.tel.l1_misses, t, 1);
                self.telemetry.count(self.tel.l2_hits, t, 1);
            }
            HierProbe::L2Upgrade | HierProbe::L2Miss => {
                self.telemetry.count(self.tel.l1_misses, t, 1);
                self.telemetry.count(self.tel.l2_misses, t, 1);
            }
        }

        // Fast path for the overwhelmingly common case: an L1 hit with no
        // in-flight fills to wait on and no memory tracing charges
        // nothing and completes at `t` — skip line math, the pending-fill
        // lookup, and trace plumbing. Bit-identical to the general path
        // below by construction.
        if matches!(probe, HierProbe::L1Hit)
            && self.mems[self.node].pending.is_empty()
            && !self.tracer.enabled(TraceCategory::Mem)
        {
            return Resolution {
                done_at: t,
                level: AccessLevel::L1,
                tlb_refill: refill,
            };
        }

        let line = self.mems[self.node].hier.l2_line(paddr);

        let (mut done_at, level) = match probe {
            HierProbe::L1Hit => (t, AccessLevel::L1),
            HierProbe::L2Hit => {
                self.mems[self.node].hier.fill_l1_from_l2(paddr, write);
                if demand_read {
                    self.account(StallClass::L1Miss, t, self.cfg.l2_hit);
                }
                (t + self.cfg.l2_hit, AccessLevel::L2)
            }
            HierProbe::L2Upgrade => {
                let sampled = self.span_txn_open(line, kind, at, refill, fault);
                let mut out = self.memsys.access(MemRequest {
                    node: self.node as u32,
                    line,
                    kind: AccessKind::Upgrade,
                    now: t,
                });
                let pre_perturb = out.done_at;
                out.done_at += self.faults.perturb_latency(out.done_at - t);
                if sampled {
                    if out.done_at > pre_perturb {
                        // The upgrade arm leaves the breakdown untouched
                        // by perturbation, so the leg is unclassed.
                        self.spans.leg(
                            "fault_perturb",
                            self.node as u32,
                            pre_perturb,
                            out.done_at,
                            None,
                            out.done_at - pre_perturb,
                        );
                    }
                    self.spans.txn_end(out.done_at, out.case.key());
                    self.span_mark(line, at, out.done_at);
                }
                self.apply_actions(line, &out.actions);
                self.mems[self.node].hier.complete_upgrade(paddr);
                (out.done_at, AccessLevel::Memory(out.case))
            }
            HierProbe::L2Miss => {
                let sampled = self.span_txn_open(line, kind, at, refill, fault);
                let (done, level, bd) = self.miss_transaction(paddr, write, t);
                if sampled {
                    self.span_mark(line, at, done);
                }
                if demand_read {
                    self.account(StallClass::DirOccupancy, t, bd.occupancy);
                    self.account(StallClass::NetTransit, t, bd.network);
                    self.account(StallClass::L2Miss, t, bd.memory);
                }
                (done, level)
            }
        };

        // A hit on a line whose fill is still in flight (e.g. behind a
        // prefetch) waits for the data to arrive.
        if matches!(probe, HierProbe::L1Hit | HierProbe::L2Hit) {
            if let Some(&(arrives, bd)) = self.mems[self.node].pending.get(&line) {
                if arrives > done_at {
                    if demand_read {
                        self.charge_exposed_wait(done_at, arrives - done_at, bd);
                    }
                    done_at = arrives;
                } else {
                    self.mems[self.node].pending.remove(&line);
                }
            }
        }

        if self.tracer.enabled(TraceCategory::Mem) {
            let kind = match probe {
                HierProbe::L1Hit => "l1_hit",
                HierProbe::L2Hit => "l2_hit",
                HierProbe::L2Upgrade => "l2_upgrade",
                HierProbe::L2Miss => "l2_miss",
            };
            self.tracer.emit(
                done_at,
                TraceCategory::Mem,
                kind,
                self.node as u32,
                line.get(),
                write as u64,
            );
        }

        Resolution {
            done_at,
            level,
            tlb_refill: refill,
        }
    }
}

/// Ops a lookahead scan walks before giving up and returning a capped
/// (still valid) bound. Also caps the fork dispatcher's default quota.
const FORK_SCAN_CAP: usize = 4096;
/// Per-node fork-quota clamp and the adaptation loop's tuning knobs:
/// the quota tracks twice the admitted-ops EWMA so a phase that forks
/// well gets longer private runs, and a round that admits fewer than
/// `FORK_MIN_YIELD` ops per node sends the scheduler back to serial
/// batches for `SERIAL_BACKOFF` decisions before re-probing.
const FORK_MIN_QUOTA: f64 = 256.0;
const FORK_MAX_QUOTA: f64 = 8192.0;
const FORK_MIN_YIELD: f64 = 16.0;
const SERIAL_BACKOFF: u32 = 64;

/// The private state one node carries into a parallel round. Moved out
/// of the machine's vectors so a pool job can own it (`'static` jobs),
/// and moved back — in node order — at the join.
struct Bundle {
    core: Box<dyn Core>,
    mem: NodeMem,
    stream: ThreadStream,
}

/// Why a forked private phase stopped. Pure host observability: the
/// join tallies these into the host profiler's fork-admission counters
/// ([`flashsim_engine::ForkAdmission`]) and nothing simulated ever
/// reads one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum ForkStop {
    /// No stop to report (node not forked, or stalled by injection).
    #[default]
    None,
    /// Reached the conservative horizon.
    Horizon,
    /// Stopped at a sync op, left for the serial sync arm.
    Sync,
    /// Stopped at a memory op predicted shared (unmapped page, or
    /// classify said upgrade/miss).
    Shared,
    /// Exhausted the per-node op quota.
    Quota,
    /// Ran off the end of the op stream.
    End,
}

/// Per-node mailbox for a parallel round. One slot per node; each pool
/// job locks only its own slot, so the mutexes are uncontended and
/// exist purely to satisfy the shared-ownership type.
struct ForkSlot {
    bundle: Option<Bundle>,
    /// Scan output: a conservative lower bound on the `(clock, node)`
    /// key of this node's next possibly-shared action.
    lb: Time,
    /// Fork output: ops dispatched during the private phase.
    dispatches: u64,
    /// Fork output: the node's status after the private phase (`Done`
    /// or `Stalled` park it; otherwise still `Running`).
    status: NodeStatus,
    /// Fork output: why the private phase stopped (host observability).
    stop: ForkStop,
}

fn lock_slot(slots: &[Mutex<ForkSlot>], n: usize) -> MutexGuard<'_, ForkSlot> {
    // One job per slot: contention-free, and a poisoned slot can only
    // mean a sibling job panicked — the pool re-raises that panic before
    // the driver reads any slot, so recovering the guard is safe.
    slots[n].lock().unwrap_or_else(PoisonError::into_inner)
}

/// Walks `stream` from its cursor counting ops until the first
/// *possibly shared* one — a sync op, a memory op on an unmapped page,
/// or an access [`CacheHierarchy::classify`] predicts as an upgrade or
/// miss — and returns `now + count * min_ps_per_op`, a lower bound on
/// that op's reference schedule key (every op advances the node clock
/// by at least one cycle, and per-node op keys are monotone).
/// [`Time::MAX`] when the stream ends first; a capped scan returns the
/// bound at the cap, which is still valid.
fn scan_lb(
    stream: &mut ThreadStream,
    hier: &CacheHierarchy,
    pt: &PageTable,
    now: Time,
    profile: ScanProfile,
    page_bytes: u64,
) -> Time {
    for k in 0..FORK_SCAN_CAP {
        let Some(op) = stream.peek_at(k) else {
            return Time::MAX;
        };
        let shared = if op.class.is_sync() {
            true
        } else if profile.resolves_memory && op.class.is_memory() {
            match pt.lookup(op.addr.vpn(page_bytes)) {
                // First touch maps a page: page table and frame
                // allocator are shared state.
                None => true,
                Some(pfn) => {
                    let paddr = flashsim_mem::addr::translate(op.addr, pfn, page_bytes);
                    let write = op.class == OpClass::Store;
                    matches!(
                        hier.classify(paddr, write),
                        HierProbe::L2Upgrade | HierProbe::L2Miss
                    )
                }
            }
        } else {
            false
        };
        if shared {
            return now + profile.min_ps_per_op * k as u64;
        }
    }
    now + profile.min_ps_per_op * FORK_SCAN_CAP as u64
}

/// The environment a forked node's core executes against during the
/// parallel policy's private phase. It mirrors [`MachineEnv`]'s resolve
/// bit-for-bit on the paths a fork-admitted op can reach — translation
/// of an already-mapped page (TLB refills included), L1/L2 hits, and
/// waits on the node's own in-flight fills. The shared paths (page
/// faults, upgrades, misses, tracing, spans) are unreachable by
/// construction: the dispatcher admits a memory op only after
/// [`CacheHierarchy::classify`] proves it a hit on a mapped page, pages
/// are never unmapped, and no private path evicts or downgrades an L2
/// line, so the prediction cannot degrade before the op executes.
struct ForkEnv {
    node: usize,
    mem: NodeMem,
    pt: Arc<PageTable>,
    cfg: Arc<MachineConfig>,
    clock: Clock,
    profiler: Profiler,
    telemetry: Telemetry,
    tel: TelIds,
}

impl ForkEnv {
    /// [`MachineEnv::account`] with `in_op` fixed to true: forked
    /// resolution always happens inside a core op.
    fn account(&self, class: StallClass, at: Time, dur: TimeDelta) {
        if dur.is_zero() {
            return;
        }
        self.profiler.charge(self.node as u32, class, at, dur);
    }

    /// Identical to [`MachineEnv::charge_exposed_wait`].
    fn charge_exposed_wait(&self, at: Time, wait: TimeDelta, bd: LatencyBreakdown) {
        let total = bd.total().as_ps();
        if total == 0 {
            self.account(StallClass::L2Miss, at, wait);
            return;
        }
        let w = wait.as_ps() as u128;
        let part =
            |p: TimeDelta| TimeDelta::from_ps((w * p.as_ps() as u128 / total as u128) as u64);
        let occ = part(bd.occupancy);
        let net = part(bd.network);
        self.account(StallClass::DirOccupancy, at, occ);
        self.account(StallClass::NetTransit, at, net);
        self.account(StallClass::L2Miss, at, wait - occ - net);
    }
}

impl MemEnv for ForkEnv {
    fn resolve(&mut self, addr: VAddr, kind: MemAccessKind, at: Time) -> Resolution {
        let page_bytes = self.cfg.geometry.page_bytes;
        let vpn = addr.vpn(page_bytes);
        // Admission proved the page mapped (an unmapped page is a
        // possibly-shared action) and pages are never unmapped.
        let pfn = self.pt.lookup(vpn).expect("fork op on unmapped page"); // gate: allow
        let mut refill = TimeDelta::ZERO;
        if let TlbModel::Modeled { refill_cycles, .. } = self.cfg.os.tlb {
            let tlb = self.mem.tlb.as_mut().expect("TLB modelled but absent"); // gate: allow
            if tlb.translate(addr).is_none() {
                tlb.insert(vpn, pfn);
                refill = self.clock.cycles(refill_cycles);
                self.mem.tlb_refills += 1;
            }
        }
        let paddr = flashsim_mem::addr::translate(addr, pfn, page_bytes);
        // No page fault is possible here, so `t = at + refill + 0` and
        // the zero OS charge MachineEnv would skip is skipped too.
        let t = at + refill;
        let write = kind == MemAccessKind::Write;
        if kind != MemAccessKind::Prefetch {
            self.account(StallClass::TlbRefill, at, refill);
        }
        let demand_read = kind == MemAccessKind::Read;

        let probe = self.mem.hier.probe(paddr, write);
        match probe {
            HierProbe::L1Hit => self.telemetry.count(self.tel.l1_hits, t, 1),
            HierProbe::L2Hit => {
                self.telemetry.count(self.tel.l1_misses, t, 1);
                self.telemetry.count(self.tel.l2_hits, t, 1);
            }
            // Admission classified this access a hit, and private
            // execution can only preserve or upgrade hit-ness.
            HierProbe::L2Upgrade | HierProbe::L2Miss => unreachable!(), // gate: allow
        }

        // Memory tracing is never enabled under a fork (the policy runs
        // fully serial when the tracer is active), so this is exactly
        // MachineEnv's fast-path condition.
        if matches!(probe, HierProbe::L1Hit) && self.mem.pending.is_empty() {
            return Resolution {
                done_at: t,
                level: AccessLevel::L1,
                tlb_refill: refill,
            };
        }

        let line = self.mem.hier.l2_line(paddr);
        let (mut done_at, level) = match probe {
            HierProbe::L1Hit => (t, AccessLevel::L1),
            HierProbe::L2Hit => {
                self.mem.hier.fill_l1_from_l2(paddr, write);
                if demand_read {
                    self.account(StallClass::L1Miss, t, self.cfg.l2_hit);
                }
                (t + self.cfg.l2_hit, AccessLevel::L2)
            }
            HierProbe::L2Upgrade | HierProbe::L2Miss => unreachable!(), // gate: allow
        };

        if let Some(&(arrives, bd)) = self.mem.pending.get(&line) {
            if arrives > done_at {
                if demand_read {
                    self.charge_exposed_wait(done_at, arrives - done_at, bd);
                }
                done_at = arrives;
            } else {
                self.mem.pending.remove(&line);
            }
        }

        Resolution {
            done_at,
            level,
            tlb_refill: refill,
        }
    }
}

/// One node's private phase of a parallel round, executed by a pool
/// job. Dispatch order mirrors [`Machine::run_batch`] per op: the
/// injector stall sweep, the schedule test (here the horizon — the op's
/// reference key must beat every other runnable node's next
/// possibly-shared action, so it commutes with everything that can
/// happen before the next serial phase), then dispatch with inline OS
/// timer ticks. Sync ops stop the phase *unconsumed* for the serial
/// loop's sync arm; a memory op runs only if admission proves it
/// private (mapped page, classify hit). The round's budget guard runs
/// before forking, so no per-op budget check is needed here.
#[allow(clippy::too_many_arguments)]
fn run_fork(
    n: usize,
    mut bundle: Bundle,
    horizon: Option<(u32, Time)>,
    quota: u64,
    profile: ScanProfile,
    inject_stalls: bool,
    faults: &FaultInjector,
    pt: &Arc<PageTable>,
    cfg: &Arc<MachineConfig>,
    profiler: &Profiler,
    telemetry: &Telemetry,
    tel: TelIds,
) -> (Bundle, u64, NodeStatus, ForkStop) {
    let page_bytes = cfg.geometry.page_bytes;
    let mut env = ForkEnv {
        node: n,
        mem: bundle.mem,
        pt: Arc::clone(pt),
        cfg: Arc::clone(cfg),
        clock: cfg.cpu.clock(),
        profiler: profiler.clone(),
        telemetry: telemetry.clone(),
        tel,
    };
    let core = &mut bundle.core;
    let stream = &mut bundle.stream;
    let mut dispatches = 0u64;
    let mut status = NodeStatus::Running;
    // The `while` condition can only end the loop by quota exhaustion;
    // every `break` overwrites the stop reason with its own.
    let mut stop = ForkStop::Quota;
    while dispatches < quota {
        if inject_stalls && faults.node_stalled(n as u32, stream.consumed()) {
            status = NodeStatus::Stalled;
            stop = ForkStop::None;
            break;
        }
        let now = core.now();
        if let Some((m, lim)) = horizon {
            if (now, n as u32) >= (lim, m) {
                stop = ForkStop::Horizon;
                break;
            }
        }
        let Some(&op) = stream.peek_op() else {
            // End-of-stream discovery is a dispatch, as in run_batch;
            // drain and park. Per-node state only.
            dispatches += 1;
            let t = core.drain();
            core.set_time(t);
            status = NodeStatus::Done;
            stop = ForkStop::End;
            break;
        };
        if op.class.is_sync() {
            // Left unconsumed for the serial phase's sync arm.
            stop = ForkStop::Sync;
            break;
        }
        if profile.resolves_memory && op.class.is_memory() {
            let admitted = match pt.lookup(op.addr.vpn(page_bytes)) {
                None => false,
                Some(pfn) => {
                    let paddr = flashsim_mem::addr::translate(op.addr, pfn, page_bytes);
                    let write = op.class == OpClass::Store;
                    matches!(
                        env.mem.hier.classify(paddr, write),
                        HierProbe::L1Hit | HierProbe::L2Hit
                    )
                }
            };
            if !admitted {
                stop = ForkStop::Shared;
                break;
            }
        }
        dispatches += 1;
        stream.advance();
        let op_start = core.now();
        core.execute(&op, &mut env);
        env.profiler
            .mark_op(n as u32, op_start, core.now().saturating_since(op_start));
        // OS timer ticks touch only per-node state; charged inline
        // exactly as run_batch does.
        if let Some(interval) = cfg.os.timer_interval {
            let now = core.now();
            while env.mem.next_tick <= now {
                env.mem.next_tick += interval;
                let at = core.now();
                env.profiler
                    .charge_wall(n as u32, StallClass::Os, at, cfg.os.timer_cost);
                core.set_time(at + cfg.os.timer_cost);
            }
        }
    }
    bundle.mem = env.mem;
    (bundle, dispatches, status, stop)
}

/// Machine-readable provenance record for one run: what was simulated,
/// under which configuration and seed, and how fast the host simulated
/// it. Written alongside results so any number in a report can be traced
/// back to (and reproduced from) the run that produced it.
#[derive(Debug, Clone)]
pub struct RunManifest {
    /// Machine configuration label (e.g. `"simos-mipsy-225/flashlite"`).
    pub config: String,
    /// Node/processor count.
    pub nodes: u32,
    /// Workload display name.
    pub workload: String,
    /// Workload base seed, if the program has one.
    pub seed: Option<u64>,
    /// Active scheduling policy (`"batched"` / `"reference"`).
    pub sched: String,
    /// Human-readable fault-plan summary; `None` when no faults were
    /// injected.
    pub faults: Option<String>,
    /// Host wall-clock seconds spent inside [`Machine::run`].
    pub wall_seconds: f64,
    /// Ops executed across all nodes.
    pub total_ops: u64,
    /// Simulated time covered by the run, in seconds.
    pub simulated_seconds: f64,
    /// Host throughput: simulated ops (engine events) per wall-clock
    /// second.
    pub events_per_sec: f64,
    /// Simulated MIPS: millions of simulated instructions per wall-clock
    /// second — the paper's slowdown currency.
    pub sim_mips: f64,
    /// Per-class share of all accounted cycles, in [`StallClass::ALL`]
    /// order; `None` when the run had no profiler attached.
    pub account: Option<[f64; StallClass::COUNT]>,
    /// Span-sampling plan summary (`"seed=… period=… max_txns=…"`);
    /// `None` when the run had no span tracer attached.
    pub spans: Option<String>,
    /// Path of the live `flashsim-stream-v1` event stream, when
    /// [`MachineConfig::stream`] directed one to a file.
    pub stream: Option<String>,
}

impl RunManifest {
    /// Renders the manifest as a flat JSON object (hand-rolled; no
    /// dependencies). Numeric fields are emitted as JSON numbers,
    /// non-finite values as `null`, and a missing seed as `null`.
    pub fn to_json(&self) -> String {
        fn num(v: f64) -> String {
            if v.is_finite() {
                format!("{v}")
            } else {
                "null".to_owned()
            }
        }
        let mut out = String::with_capacity(256);
        out.push_str("{\"config\":\"");
        flashsim_engine::trace::push_json_escaped(&mut out, &self.config);
        out.push_str("\",\"nodes\":");
        out.push_str(&self.nodes.to_string());
        out.push_str(",\"workload\":\"");
        flashsim_engine::trace::push_json_escaped(&mut out, &self.workload);
        out.push_str("\",\"seed\":");
        match self.seed {
            Some(s) => out.push_str(&s.to_string()),
            None => out.push_str("null"),
        }
        out.push_str(",\"sched\":\"");
        flashsim_engine::trace::push_json_escaped(&mut out, &self.sched);
        out.push_str("\",\"faults\":");
        match &self.faults {
            Some(f) => {
                out.push('"');
                flashsim_engine::trace::push_json_escaped(&mut out, f);
                out.push('"');
            }
            None => out.push_str("null"),
        }
        out.push_str(",\"wall_seconds\":");
        out.push_str(&num(self.wall_seconds));
        out.push_str(",\"total_ops\":");
        out.push_str(&self.total_ops.to_string());
        out.push_str(",\"simulated_seconds\":");
        out.push_str(&num(self.simulated_seconds));
        out.push_str(",\"events_per_sec\":");
        out.push_str(&num(self.events_per_sec));
        out.push_str(",\"sim_mips\":");
        out.push_str(&num(self.sim_mips));
        out.push_str(",\"spans\":");
        match &self.spans {
            Some(s) => {
                out.push('"');
                flashsim_engine::trace::push_json_escaped(&mut out, s);
                out.push('"');
            }
            None => out.push_str("null"),
        }
        out.push_str(",\"stream\":");
        match &self.stream {
            Some(s) => {
                out.push('"');
                flashsim_engine::trace::push_json_escaped(&mut out, s);
                out.push('"');
            }
            None => out.push_str("null"),
        }
        out.push_str(",\"account\":");
        match &self.account {
            None => out.push_str("null"),
            Some(fractions) => {
                out.push('{');
                for (i, (class, f)) in StallClass::ALL.iter().zip(fractions).enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(class.key());
                    out.push_str("\":");
                    out.push_str(&num(*f));
                }
                out.push('}');
            }
        }
        out.push('}');
        out
    }
}

/// The result of one program run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Wall-clock time of the whole run (all nodes done).
    pub total_time: TimeDelta,
    /// Time of the measured section: from the release of the program's
    /// timing barrier (or 0 if none) to completion.
    pub parallel_time: TimeDelta,
    /// Ops executed per node — identical across platforms for the same
    /// program ("same binaries").
    pub ops_per_node: Vec<u64>,
    /// Release time of every barrier, in id order.
    pub barrier_releases: Vec<(u32, Time)>,
    /// Merged statistics from cores, hierarchies, TLBs, and the memory
    /// system.
    pub stats: StatSet,
    /// Provenance and host-throughput record for the run.
    pub manifest: RunManifest,
    /// Cycle-accounting snapshot (per-node stall-class totals plus the
    /// time-phase view); `None` when no profiler was attached.
    pub accounting: Option<Accounting>,
    /// Sim-time telemetry series (occupancy/utilization over simulated
    /// time); `None` when no telemetry registry was attached.
    pub telemetry: Option<TelemetrySeries>,
    /// Sampled causal span trees; `None` when no span tracer was
    /// attached.
    pub spans: Option<SpanSet>,
    /// Host-time self-profile (phase decomposition, fork-admission
    /// outcomes, per-worker lanes); `None` when no host profiler was
    /// attached. Pure host observability — carries no simulated state.
    pub hostprof: Option<HostReport>,
}

impl RunResult {
    /// Total ops across all nodes.
    pub fn total_ops(&self) -> u64 {
        self.ops_per_node.iter().sum()
    }
}

/// A checkpoint consumer: called at every barrier release with
/// `(seq, release_time, checkpoint_text)`.
pub type CkptSink = Box<dyn FnMut(u64, Time, &str) + Send>;

/// A configured machine ready to run one program.
pub struct Machine {
    cfg: MachineConfig,
    cores: Vec<Box<dyn Core>>,
    mems: Vec<NodeMem>,
    memsys: Box<dyn MemorySystem>,
    pt: PageTable,
    alloc: FrameAllocator,
    segments: Vec<Segment>,
    streams: Vec<ThreadStream>,
    status: Vec<NodeStatus>,
    barrier_arrivals: HashMap<u32, Vec<(usize, Time)>>,
    barrier_releases: Vec<(u32, Time)>,
    locks: HashMap<u32, LockState>,
    lock_addr: HashMap<u32, VAddr>,
    timing_start: Option<u32>,
    tracer: Tracer,
    profiler: Profiler,
    injector: FaultInjector,
    telemetry: Telemetry,
    spans: SpanTracer,
    tel: TelIds,
    heartbeat: Option<Heartbeat>,
    fault: Option<SimError>,
    workload: String,
    workload_seed: Option<u64>,
    /// Called at every barrier release (the machine's quiescent points)
    /// with `(seq, release_time, checkpoint_text)`; see
    /// [`Machine::attach_ckpt_sink`].
    ckpt_sink: Option<CkptSink>,
    /// Sequence number of the next checkpoint this machine will emit;
    /// restored from checkpoints so resumed runs continue the numbering.
    ckpt_seq: u64,
    /// Live `flashsim-stream-v1` event emitter; see
    /// [`Machine::attach_stream_sink`].
    stream: Option<StreamEmitter>,
    /// Stream position `(next_seq, last_emitted_ps)` restored from a
    /// checkpoint before any sink is attached; a later attach resumes
    /// from here instead of re-emitting the prefix.
    stream_pos: (u64, u64),
    /// Live worker-pool occupancy under the parallel policy:
    /// `(worker count, cumulative busy ns across workers)`, refreshed
    /// once per scheduling decision so the heartbeat can report a busy
    /// fraction. `None` under the serial policies.
    worker_busy: Option<(usize, u64)>,
    /// Live per-worker cumulative busy ns (same refresh cadence as
    /// `worker_busy`), reused in place so the refresh never allocates;
    /// the heartbeat derives advisory per-worker utilization from it.
    worker_busy_lanes: Vec<u64>,
    /// Host-time self-profiler; see [`Machine::attach_hostprof`].
    /// Disabled by default: one branch per probe.
    hostprof: HostProf,
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Machine({} x{})", self.cfg.label(), self.cfg.nodes)
    }
}

impl Machine {
    /// Builds a machine for `program` under `cfg`.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError`] if the program's thread count does not
    /// match `cfg.nodes` or its segments are malformed.
    pub fn new(cfg: MachineConfig, program: &dyn Program) -> Result<Machine, MachineError> {
        if program.num_threads() != cfg.nodes as usize {
            return Err(MachineError::ThreadMismatch {
                program: program.num_threads(),
                nodes: cfg.nodes,
            });
        }
        let segments =
            check_segments(program, cfg.geometry.page_bytes).map_err(MachineError::BadSegments)?;

        let tlb_entries = match cfg.os.tlb {
            TlbModel::Modeled { entries, .. } => Some(entries),
            TlbModel::None => None,
        };
        let mems = (0..cfg.nodes)
            .map(|_| NodeMem {
                hier: CacheHierarchy::new(cfg.geometry.l1, cfg.geometry.l2),
                tlb: tlb_entries.map(|e| Tlb::new(e, cfg.geometry.page_bytes)),
                pending: FxHashMap::default(),
                page_faults: 0,
                tlb_refills: 0,
                next_tick: Time::ZERO + cfg.os.timer_interval.unwrap_or(TimeDelta::ZERO),
                lb_dirty: true,
            })
            .collect();

        let alloc = FrameAllocator::new(
            cfg.os.alloc_policy,
            cfg.nodes,
            cfg.geometry.frames_per_node(),
            cfg.geometry.page_bytes,
            cfg.geometry.colors(),
        );
        // Construction-time fault pressure: the plan can clamp FlashLite's
        // directory pointer pool (forcing sharer reclamation) and its
        // MAGIC inbound-queue NACK threshold (provoking retry storms)
        // before the model is built.
        let injector = FaultInjector::new(cfg.faults.unwrap_or_default());
        let mut memsys_kind = cfg.memsys;
        if let (Some(plan), MemSysKind::FlashLite(p)) = (&cfg.faults, &mut memsys_kind) {
            if let Some(cap) = plan.dir_pool_cap {
                p.dir_pool = p.dir_pool.min(cap);
            }
            if let Some(q) = plan.magic_queue_ns {
                p.nack_threshold = p.nack_threshold.min(TimeDelta::from_ns(q));
            }
        }
        let mut memsys = memsys_kind.build(cfg.nodes, cfg.geometry.node_mem_bytes);
        memsys.attach_faults(injector.clone());
        let cores = (0..cfg.nodes).map(|_| cfg.cpu.build()).collect();
        let streams = (0..cfg.nodes as usize).map(|t| program.stream(t)).collect();

        let mut machine = Machine {
            cfg,
            cores,
            mems,
            memsys,
            pt: PageTable::new(),
            alloc,
            segments,
            streams,
            status: vec![NodeStatus::Running; 0],
            barrier_arrivals: HashMap::new(),
            barrier_releases: Vec::new(),
            locks: HashMap::new(),
            lock_addr: HashMap::new(),
            timing_start: program.timing_barrier(),
            tracer: Tracer::disabled(),
            profiler: Profiler::disabled(),
            injector,
            telemetry: Telemetry::disabled(),
            spans: SpanTracer::disabled(),
            tel: TelIds::none(),
            heartbeat: None,
            fault: None,
            workload: program.name(),
            workload_seed: program.seed(),
            ckpt_sink: None,
            ckpt_seq: 0,
            stream: None,
            stream_pos: (0, 0),
            worker_busy: None,
            worker_busy_lanes: Vec::new(),
            hostprof: HostProf::disabled(),
        };
        if let Some(cadence) = machine.cfg.telemetry {
            machine.attach_telemetry(Telemetry::with_cadence(cadence));
        }
        if machine.cfg.profile {
            machine.attach_profiler(Profiler::new());
        }
        if let Some(every) = machine.cfg.heartbeat {
            machine.attach_heartbeat(every);
        }
        if let Some(plan) = machine.cfg.spans {
            machine.attach_spans(SpanTracer::new(plan));
        }
        if machine.cfg.hostprof {
            machine.attach_hostprof(HostProf::new());
        }
        Ok(machine)
    }

    /// The configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Attaches a flight recorder to every layer of the machine: each core
    /// (`cpu` events, tagged with its node id), the cache/TLB path (`mem`
    /// events), the memory system (`proto` events, plus `net` events if the
    /// model has a network), and the machine itself (`machine` events:
    /// run phases, barrier releases, lock hand-offs).
    ///
    /// Attach *before* [`Machine::run`]; a disabled tracer (the default)
    /// costs a single masked branch per potential event.
    pub fn attach_tracer(&mut self, tracer: Tracer) {
        for (n, core) in self.cores.iter_mut().enumerate() {
            core.attach_tracer(tracer.clone(), n as u32);
        }
        self.memsys.attach_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// Attaches a cycle-accounting profiler: each core charges its
    /// internal pipeline stalls, while the machine itself charges memory
    /// latency (split per the model's [`LatencyBreakdown`]), TLB refills,
    /// OS costs, synchronization waits, and marks per-op boundaries so
    /// uncharged time lands in the compute residual.
    ///
    /// Attach *before* [`Machine::run`]; a disabled profiler (the
    /// default) costs one branch per potential charge.
    pub fn attach_profiler(&mut self, profiler: Profiler) {
        for (n, core) in self.cores.iter_mut().enumerate() {
            core.attach_profiler(profiler.clone(), n as u32);
        }
        self.profiler = profiler;
    }

    /// Attaches a sim-time telemetry registry to every layer of the
    /// machine: cache hit/miss counters, pending-miss depth, and barrier
    /// clock skew here, plus whatever the memory-system model registers
    /// (directory-pool occupancy, MAGIC inbound queue, NACK/retry rates,
    /// link utilization, …). Scheduler-internal metrics are registered
    /// volatile: available for inspection, excluded from the stable
    /// export because batching reshapes them by design.
    ///
    /// Attach *before* [`Machine::run`]; a disabled registry (the
    /// default) costs one branch per potential sample. Setting
    /// [`MachineConfig::telemetry`] attaches one automatically at
    /// construction.
    pub fn attach_telemetry(&mut self, telemetry: Telemetry) {
        self.tel = TelIds {
            l1_hits: telemetry.register("mem.l1_hits", MetricKind::Counter),
            l1_misses: telemetry.register("mem.l1_misses", MetricKind::Counter),
            l2_hits: telemetry.register("mem.l2_hits", MetricKind::Counter),
            l2_misses: telemetry.register("mem.l2_misses", MetricKind::Counter),
            pending_depth: telemetry.register("mem.pending_depth", MetricKind::Gauge),
            barrier_skew: telemetry.register("machine.barrier_skew_ps", MetricKind::Gauge),
            sched_batches: telemetry.register_volatile("sched.batches", MetricKind::Counter),
            sched_batch_ops: telemetry.register_volatile("sched.batch_ops", MetricKind::Counter),
            sched_heap: telemetry.register_volatile("sched.heap_nodes", MetricKind::Gauge),
        };
        self.memsys.attach_telemetry(telemetry.clone());
        self.telemetry = telemetry;
    }

    /// The attached telemetry registry (disabled until
    /// [`Machine::attach_telemetry`] — directly or via
    /// [`MachineConfig::telemetry`]).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Attaches a causal span tracer: the machine roots one span tree per
    /// sampled L2-missing access (issue time → data back in the cache)
    /// and the memory-system model appends the legs it traverses —
    /// handler occupancies, per-hop network legs, NACK/retry loops, bank
    /// accesses, reply path. Per-leg charges mirror the model's
    /// [`LatencyBreakdown`] accumulators exactly, so each tree's charges
    /// tile its end-to-end latency in integer picoseconds.
    ///
    /// Attach *before* [`Machine::run`]; a disabled tracer (the default)
    /// costs one branch per miss. Setting [`MachineConfig::spans`]
    /// attaches one automatically at construction.
    pub fn attach_spans(&mut self, spans: SpanTracer) {
        self.memsys.attach_spans(spans.clone());
        self.spans = spans;
    }

    /// The sampled span trees collected so far (`None` when no span
    /// tracer is attached).
    pub fn spans(&self) -> Option<SpanSet> {
        self.spans.snapshot()
    }

    /// Enables a live stderr heartbeat: at most one line per `every` of
    /// host wall-clock time reporting sim time, ops executed, host
    /// throughput, watchdog-budget progress, and the current spread
    /// between the fastest and slowest node clocks.
    pub fn attach_heartbeat(&mut self, every: std::time::Duration) {
        self.heartbeat = Some(Heartbeat {
            every,
            stderr: true,
            ticks: 0,
            meter: ProgressMeter::start(),
            last_busy: None,
            last_worker: Vec::new(),
        });
    }

    /// Attaches a host-time self-profiler: the scheduling loops drive
    /// its scoped phase timers (scan / fork / commit / serial /
    /// checkpoint / stream over a `drive` base), the parallel rounds
    /// tally fork-admission outcomes into it, and the worker pool's
    /// per-worker lanes are harvested into its report.
    ///
    /// Attach *before* [`Machine::run`]; a disabled profiler (the
    /// default) costs one branch per probe. Setting
    /// [`MachineConfig::hostprof`] attaches one automatically at
    /// construction.
    ///
    /// Isolation contract: the profiler only ever *absorbs* host clock
    /// readings — no machine code path reads time back out of it — so
    /// attachment cannot change a single simulated byte
    /// (`tests/hostprof_isolation.rs` proves it per platform and
    /// policy), and the knob is excluded from [`Machine::provenance`].
    pub fn attach_hostprof(&mut self, hostprof: HostProf) {
        self.hostprof = hostprof;
    }

    /// The finalized host-time report of the last completed run
    /// (`None` when no profiler is attached or no run has finished).
    pub fn hostprof_report(&self) -> Option<HostReport> {
        self.hostprof.report()
    }

    /// Attaches a live `flashsim-stream-v1` event sink: the machine
    /// emits a `start` header, one closed telemetry bucket per barrier
    /// release, checkpoint-written markers, advisory progress
    /// heartbeats, and an `end` terminator (see
    /// [`flashsim_engine::stream`]). Streaming never perturbs simulated
    /// state — the deterministic events are a pure function of the
    /// run's provenance, and a sink error silently stops the stream
    /// rather than failing the run.
    ///
    /// On a machine restored from a checkpoint the emitter resumes at
    /// the stored stream position, so the continuation appends exactly
    /// the events the uninterrupted run would have produced. Setting
    /// [`MachineConfig::stream`] attaches a durable [`FileSink`]
    /// automatically at [`Machine::run`] (create on a fresh run, append
    /// on resume).
    pub fn attach_stream_sink(&mut self, sink: Box<dyn StreamSink>) {
        let mut em = StreamEmitter::new(sink);
        em.set_position(self.stream_pos.0, self.stream_pos.1);
        self.stream = Some(em);
    }

    /// The stream emitter's `(next_seq, last_emitted_ps)` position —
    /// what checkpoints store, and what the journal truncates a
    /// restored cell's stream file back to.
    pub fn stream_position(&self) -> (u64, u64) {
        self.stream
            .as_ref()
            .map_or(self.stream_pos, StreamEmitter::position)
    }

    /// Run-entry stream setup: opens the configured file sink if none
    /// is attached yet, auto-attaches a silent heartbeat so progress
    /// events flow even without [`MachineConfig::heartbeat`], and emits
    /// the `start` header (fresh streams only) with the bucket
    /// baselines seeded from current cumulative totals — zeros on a
    /// fresh run, the restored quiescent-point totals on resume.
    fn open_stream(&mut self) {
        if self.stream.is_none() {
            if let Some(path) = self.cfg.stream.clone() {
                let opened = if self.stream_pos.0 == 0 {
                    FileSink::create(&path)
                } else {
                    FileSink::append(&path)
                };
                match opened {
                    Ok(sink) => self.attach_stream_sink(Box::new(sink)),
                    Err(e) => {
                        eprintln!("[flashsim] stream sink {} unavailable: {e}", path.display());
                    }
                }
            }
        }
        if self.stream.is_none() {
            return;
        }
        if self.heartbeat.is_none() {
            self.heartbeat = Some(Heartbeat {
                every: std::time::Duration::from_millis(250),
                stderr: false,
                ticks: 0,
                meter: ProgressMeter::start(),
                last_busy: None,
                last_worker: Vec::new(),
            });
        }
        let at = Time::from_ps(self.stream_position().1);
        let metrics = self.stream_totals(at);
        let account = self.stream_account(at);
        let info = RunInfo {
            provenance: flashsim_engine::ckpt::provenance_hash(&self.provenance()),
            config: self.cfg.label(),
            workload: self.workload.clone(),
            seed: self.workload_seed,
            nodes: self.cfg.nodes,
            sched: self.cfg.sched.key().to_owned(),
            budget_ops: self.cfg.watchdog.max_ops,
        };
        if let Some(em) = self.stream.as_mut() {
            let _stream = self.hostprof.phase(HostPhase::Stream);
            em.begin(&info, &metrics, account.as_deref());
        }
    }

    /// The stable metric set at quiescent time `at` as `(key, kind,
    /// cumulative total)` — the stream emitter's bucket basis. Volatile
    /// (scheduler-shaped) metrics are excluded, exactly as in the
    /// stable JSONL export, so the stream stays policy-invariant.
    fn stream_totals(&self, at: Time) -> Vec<(String, MetricKind, u64)> {
        self.telemetry
            .snapshot(at)
            .map(|snap| {
                snap.metrics
                    .iter()
                    .filter(|m| !m.volatile)
                    .map(|m| (m.key(), m.kind, m.total))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Cumulative per-class accounting ledger at quiescent time `at`,
    /// when a profiler is attached. At a barrier release every node
    /// clock equals `at`, so the snapshot is exact and policy-invariant.
    fn stream_account(&self, at: Time) -> Option<Vec<u64>> {
        let ends = vec![at; self.cfg.nodes as usize];
        self.profiler
            .snapshot(&ends)
            .map(|acc| acc.class_totals().to_vec())
    }

    /// One scheduling-decision tick of the heartbeat. One branch when no
    /// heartbeat is attached; when attached, the wall clock is read once
    /// per 4096 ticks and a line/event is emitted at most once per
    /// interval. The stderr line and the stream's `progress` event are
    /// rendered from the same [`ProgressMeter`] sample, so they always
    /// agree.
    fn heartbeat_tick(&mut self, executed: u64) {
        let budget = self.cfg.watchdog.max_ops;
        let worker_busy = self.worker_busy;
        let Some(hb) = self.heartbeat.as_mut() else {
            return;
        };
        hb.ticks += 1;
        if hb.ticks & 0xFFF != 0 {
            return;
        }
        let now = std::time::Instant::now();
        if !hb.meter.due(now, hb.every) {
            return;
        }
        let mut sample = hb.meter.sample(now, executed, budget);
        if let Some((workers, busy_ns)) = worker_busy {
            // Average worker occupancy over the window since the last
            // sample: host-side observability only, never simulated
            // state (progress events are advisory by contract).
            if let Some((prev_at, prev_ns)) = hb.last_busy {
                let wall_ns = now.duration_since(prev_at).as_nanos();
                if wall_ns > 0 && workers > 0 {
                    let frac =
                        busy_ns.saturating_sub(prev_ns) as f64 / (wall_ns as f64 * workers as f64);
                    sample.busy = Some(frac.min(1.0));
                    if hb.last_worker.len() == self.worker_busy_lanes.len() {
                        sample.worker_busy = self
                            .worker_busy_lanes
                            .iter()
                            .zip(&hb.last_worker)
                            .map(|(cur, prev)| {
                                (cur.saturating_sub(*prev) as f64 / wall_ns as f64).min(1.0)
                            })
                            .collect();
                    }
                }
            }
            hb.last_busy = Some((now, busy_ns));
            hb.last_worker.clear();
            hb.last_worker.extend_from_slice(&self.worker_busy_lanes);
        }
        let stderr = hb.stderr;
        let lead = self
            .cores
            .iter()
            .map(|c| c.now())
            .fold(Time::ZERO, Time::max);
        let lag = self.cores.iter().map(|c| c.now()).fold(lead, Time::min);
        let skew = lead.saturating_since(lag);
        if let Some(em) = self.stream.as_mut() {
            let _stream = self.hostprof.phase(HostPhase::Stream);
            em.progress(lead.as_ps(), &sample, skew.as_ps());
        }
        if stderr {
            let budget = match sample.budget_frac {
                Some(f) => format!("{:.1}%", 100.0 * f),
                None => "-".to_owned(),
            };
            let busy = match sample.busy {
                Some(f) => format!(" busy={:.0}%", 100.0 * f),
                None => String::new(),
            };
            eprintln!(
                "[flashsim] sim={:.3}ms ops={executed} rate={:.0}/s live={:.0}/s \
                 budget={budget} skew={}ns{busy}",
                (lead - Time::ZERO).as_ns_f64() / 1e6,
                sample.rate,
                sample.live,
                skew.as_ns_f64(),
            );
        }
    }

    /// Charges pending OS timer ticks to node `n` up to its current time.
    fn charge_ticks(&mut self, n: usize) {
        let Some(interval) = self.cfg.os.timer_interval else {
            return;
        };
        let now = self.cores[n].now();
        while self.mems[n].next_tick <= now {
            self.mems[n].next_tick += interval;
            let at = self.cores[n].now();
            self.profiler
                .charge_wall(n as u32, StallClass::Os, at, self.cfg.os.timer_cost);
            self.cores[n].set_time(at + self.cfg.os.timer_cost);
        }
    }

    fn barrier_overhead(&self) -> TimeDelta {
        self.cfg.barrier_base + self.cfg.barrier_per_node * u64::from(self.cfg.nodes)
    }

    /// Runs the program to completion or a structured failure.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] when no node can make progress
    /// (barrier some threads never reach, lock never released), with a
    /// snapshot of which barrier/lock blocks each node;
    /// [`SimError::UnmappedAddress`] / [`SimError::OutOfPhysicalMemory`] /
    /// [`SimError::UnheldLock`] on the corresponding program faults; and
    /// [`SimError::Stalled`] when the watchdog op budget expires or
    /// stalled-node fault injection starves the machine. A failed run
    /// never hangs and never panics.
    pub fn run(&mut self) -> Result<RunResult, SimError> {
        let wall_start = std::time::Instant::now();
        // Host-time window: opened here, closed right after the policy
        // loop returns, so the phase decomposition tiles (within the
        // few trace/stream-terminator statements outside it) the same
        // wall clock the manifest reports.
        self.hostprof.run_begin();
        let nodes = self.cfg.nodes as usize;
        self.status = vec![NodeStatus::Running; nodes];
        self.open_stream();
        if self.tracer.enabled(TraceCategory::Machine) {
            self.tracer.emit(
                Time::ZERO,
                TraceCategory::Machine,
                "run_start",
                0,
                u64::from(self.cfg.nodes),
                0,
            );
        }
        let ran = match self.cfg.sched {
            SchedPolicy::Batched => self.run_batched(wall_start),
            SchedPolicy::Reference => self.run_reference(wall_start),
            SchedPolicy::Parallel { workers } => self.run_parallel(workers, wall_start),
        };
        self.hostprof.run_end();
        if let Err(e) = ran {
            let at = self
                .cores
                .iter()
                .map(|c| c.now())
                .fold(Time::ZERO, Time::max);
            let ops: u64 = self.streams.iter().map(ThreadStream::consumed).sum();
            if let Some(em) = self.stream.as_mut() {
                em.failed(at.as_ps(), ops, e.kind());
            }
            return Err(e);
        }
        let result = self.collect_result(wall_start.elapsed().as_secs_f64());
        if let Some(em) = self.stream.as_mut() {
            em.finished(result.total_time.as_ps(), result.manifest.total_ops);
        }
        Ok(result)
    }

    /// The historical schedule: one op per decision, linear laggard scan.
    /// Kept as the oracle the batched policy is proven bit-identical
    /// against, and as a debugging fallback.
    fn run_reference(&mut self, wall_start: std::time::Instant) -> Result<(), SimError> {
        let nodes = self.cfg.nodes as usize;
        let inject_stalls = self.injector.is_active();
        let wall_limit = self.cfg.watchdog.wall_limit;
        // Resumed runs re-enter mid-stream: the dispatch counter continues
        // from the restored streams' consumed ops, so watchdog budgets and
        // stall reports read the same as in an uninterrupted run. (At a
        // quiescent point no node has hit end-of-stream, so consumed ops
        // and dispatches agree.) Zero for fresh runs.
        let mut executed: u64 = self.streams.iter().map(|s| s.consumed()).sum();
        let mut decisions: u64 = 0;
        loop {
            self.heartbeat_tick(executed);
            decisions += 1;
            if let Some(limit) = wall_limit {
                // Amortized wall-clock check: the `Instant` read happens
                // on the first decision, then once per 4096.
                if decisions & 0xFFF == 1 && wall_start.elapsed() >= limit {
                    return Err(self.timeout_error(wall_start, limit));
                }
            }
            if inject_stalls {
                for n in 0..nodes {
                    if self.status[n] == NodeStatus::Running
                        && self
                            .injector
                            .node_stalled(n as u32, self.streams[n].consumed())
                    {
                        self.status[n] = NodeStatus::Stalled;
                    }
                }
            }

            // Laggard-first: the running node with the smallest clock.
            let next = (0..nodes)
                .filter(|n| self.status[*n] == NodeStatus::Running)
                .min_by_key(|n| self.cores[*n].now());
            let Some(n) = next else {
                if self.status.iter().all(|s| *s == NodeStatus::Done) {
                    return Ok(());
                }
                // A stalled node is the root cause when present: the
                // others are merely waiting for it at barriers/locks.
                if self.status.contains(&NodeStatus::Stalled) {
                    return Err(self.stall_error(executed));
                }
                return Err(SimError::Deadlock {
                    nodes: self.snapshots(),
                });
            };
            if let Some(budget) = self.cfg.watchdog.max_ops {
                if executed >= budget {
                    return Err(self.stall_error(executed));
                }
            }
            executed += 1;
            self.step_node(n)?;
        }
    }

    /// The production schedule: laggard selection through a min-heap, and
    /// a *batch* of ops per decision under conservative lookahead.
    ///
    /// The heap mirrors the set of `Running` nodes keyed by their clocks,
    /// ordered `(clock, node)` — the reference scan's tie-break. A popped
    /// laggard runs until [`Machine::run_batch`]'s continuation rules
    /// fail; the runner-up's key is a valid bound for the whole batch
    /// because no other node's clock, status, or stream can change while
    /// only the laggard executes.
    fn run_batched(&mut self, wall_start: std::time::Instant) -> Result<(), SimError> {
        let nodes = self.cfg.nodes as usize;
        let inject_stalls = self.injector.is_active();
        let lookahead = self.memsys.min_shared_latency();
        let wall_limit = self.cfg.watchdog.wall_limit;
        // See run_reference: continues from restored streams on resume.
        let mut executed: u64 = self.streams.iter().map(|s| s.consumed()).sum();
        let mut decisions: u64 = 0;
        let mut heap = LaggardHeap::new(nodes);
        for n in 0..nodes {
            heap.insert(n as u32, self.cores[n].now());
        }
        loop {
            self.heartbeat_tick(executed);
            decisions += 1;
            if let Some(limit) = wall_limit {
                // Amortized wall-clock check (first decision, then once
                // per 4096). A batch bounds the time between decisions.
                if decisions & 0xFFF == 1 && wall_start.elapsed() >= limit {
                    return Err(self.timeout_error(wall_start, limit));
                }
            }
            if inject_stalls {
                for n in 0..nodes {
                    if self.status[n] == NodeStatus::Running
                        && self
                            .injector
                            .node_stalled(n as u32, self.streams[n].consumed())
                    {
                        self.status[n] = NodeStatus::Stalled;
                        heap.remove(n as u32);
                    }
                }
            }

            let Some((n, _)) = heap.pop() else {
                if self.status.iter().all(|s| *s == NodeStatus::Done) {
                    return Ok(());
                }
                if self.status.contains(&NodeStatus::Stalled) {
                    return Err(self.stall_error(executed));
                }
                return Err(SimError::Deadlock {
                    nodes: self.snapshots(),
                });
            };
            let limit = heap.peek();
            // Scheduler-internal telemetry (volatile: the reference
            // policy has no batches, so these are policy-shaped by
            // construction and excluded from the stable export).
            let decision_at = self.cores[n as usize].now();
            let ops_before = executed;
            self.telemetry.count(self.tel.sched_batches, decision_at, 1);
            self.telemetry
                .gauge(self.tel.sched_heap, decision_at, heap.len() as u64 + 1);
            let end = {
                let _serial = self.hostprof.phase(HostPhase::Serial);
                self.run_batch(n as usize, limit, lookahead, &mut executed)?
            };
            match end {
                BatchEnd::Reschedule => heap.insert(n, self.cores[n as usize].now()),
                // The node left the Running set (done or stalled); it
                // re-enters the heap only via a sync-op rebuild.
                BatchEnd::Parked => {}
                BatchEnd::Sync => {
                    // Sync ops can wake any set of parked nodes at new
                    // clocks (barrier release, lock hand-off) or park the
                    // executor; rebuild the heap from the Running set.
                    heap.clear();
                    for m in 0..nodes {
                        if self.status[m] == NodeStatus::Running {
                            heap.insert(m as u32, self.cores[m].now());
                        }
                    }
                }
            }
            self.telemetry
                .count(self.tel.sched_batch_ops, decision_at, executed - ops_before);
        }
    }

    /// The parallel schedule: the batched policy's loop, with fork/join
    /// rounds interleaved whenever the conservative lookahead window
    /// covers more than one node's private run.
    ///
    /// A round scans each runnable node's op stream for a lower bound on
    /// its next *possibly shared* action (sync op, unmapped page,
    /// predicted upgrade/miss — see [`scan_lb`]), then executes every
    /// node's private prefix concurrently on a [`WorkerPool`], each node
    /// stopping before its horizon — the minimum of the *other* nodes'
    /// bounds. Private ops on distinct nodes commute (they touch only
    /// node-private state, and profiler charges and telemetry counters
    /// are per-window sums), and the horizon guarantees every forked op
    /// precedes every shared action any other node can take in reference
    /// order, so the round's outcome is byte-identical to the serial
    /// policies regardless of worker count or host timing. All shared
    /// ops — misses, upgrades, page faults, sync — still execute in the
    /// serial phase, in exact reference order.
    ///
    /// Forking is disabled for the whole run when a core model promises
    /// no per-op clock floor ([`ScanProfile::OPAQUE`]: no horizon can be
    /// derived) or a tracer is active (the ring's insertion order under
    /// concurrent emission is not deterministic); the loop then behaves
    /// exactly like [`Machine::run_batched`]. Telemetry-guided
    /// adaptation: an EWMA of per-round admitted ops (the
    /// `sched.batch_ops` series) tunes the per-node quota, and a
    /// low-yield round backs off to serial batches for a while — both
    /// driven only by simulated state, so the adaptation itself is
    /// deterministic.
    fn run_parallel(
        &mut self,
        workers: usize,
        wall_start: std::time::Instant,
    ) -> Result<(), SimError> {
        let pool = WorkerPool::new(workers);
        let out = self.run_parallel_loop(&pool, wall_start);
        // Harvest the pool's per-worker host-time lanes before the pool
        // (and its counters) is dropped. Host observability only.
        self.hostprof.record_workers(pool.lanes());
        out
    }

    /// The decision loop of [`Machine::run_parallel`], split out so the
    /// pool outlives every early return and its worker lanes can be
    /// harvested afterwards.
    fn run_parallel_loop(
        &mut self,
        pool: &WorkerPool,
        wall_start: std::time::Instant,
    ) -> Result<(), SimError> {
        let nodes = self.cfg.nodes as usize;
        let inject_stalls = self.injector.is_active();
        let lookahead = self.memsys.min_shared_latency();
        let wall_limit = self.cfg.watchdog.wall_limit;
        // Per-worker occupancy counters (volatile: host-shaped by
        // construction, excluded from the policy-stable exports).
        let busy_ids: Vec<MetricId> = (0..pool.size())
            .map(|w| {
                self.telemetry.register_node_volatile(
                    "sched.worker_busy_ps",
                    w as u32,
                    MetricKind::Counter,
                )
            })
            .collect();
        let mut busy_prev: Vec<u64> = vec![0; pool.size()];
        let profiles: Vec<ScanProfile> = self.cores.iter().map(|c| c.scan_profile()).collect();
        let transparent =
            profiles.iter().all(|p| p.min_ps_per_op > TimeDelta::ZERO) && !self.tracer.is_active();
        let can_fork = nodes >= 2 && transparent;
        // Host observability: when forking is off because a profile is
        // opaque (or a tracer pins the ring order), every serially run
        // op is a rejected-opaque-profile admission outcome.
        let opaque_serial = nodes >= 2 && !transparent;
        let cfg_arc = Arc::new(self.cfg.clone());
        // See run_reference: continues from restored streams on resume.
        let mut executed: u64 = self.streams.iter().map(|s| s.consumed()).sum();
        let mut decisions: u64 = 0;
        let mut heap = LaggardHeap::new(nodes);
        for n in 0..nodes {
            heap.insert(n as u32, self.cores[n].now());
        }
        let mut lbs: Vec<Time> = vec![Time::ZERO; nodes];
        let mut ewma: f64 = FORK_MAX_QUOTA / 2.0;
        let mut serial_backoff: u32 = 0;
        loop {
            // Refresh the live per-worker occupancy snapshot in place
            // (no allocation on the decision path).
            self.worker_busy_lanes.resize(pool.size(), 0);
            let mut busy_total = 0u64;
            for (w, lane) in self.worker_busy_lanes.iter_mut().enumerate() {
                *lane = pool.busy_ns(w);
                busy_total += *lane;
            }
            self.worker_busy = Some((pool.size(), busy_total));
            self.heartbeat_tick(executed);
            decisions += 1;
            if let Some(limit) = wall_limit {
                // Amortized wall-clock check (first decision, then once
                // per 4096); batches and rounds both bound the time
                // between decisions.
                if decisions & 0xFFF == 1 && wall_start.elapsed() >= limit {
                    return Err(self.timeout_error(wall_start, limit));
                }
            }
            if inject_stalls {
                for n in 0..nodes {
                    if self.status[n] == NodeStatus::Running
                        && self
                            .injector
                            .node_stalled(n as u32, self.streams[n].consumed())
                    {
                        self.status[n] = NodeStatus::Stalled;
                        heap.remove(n as u32);
                    }
                }
            }

            if can_fork && serial_backoff == 0 && heap.len() >= 2 {
                let quota = (2.0 * ewma).clamp(FORK_MIN_QUOTA, FORK_MAX_QUOTA) as u64;
                // The fork phase cannot consult the global dispatch
                // counter mid-round, so fork only when the worst case
                // fits under the watchdog budget — exhaustion then
                // always surfaces in the serial phase, at the same
                // dispatch count as under the serial policies.
                let budget_ok = match self.cfg.watchdog.max_ops {
                    None => true,
                    Some(b) => executed + heap.len() as u64 * (quota + 1) <= b,
                };
                if budget_ok {
                    let running = heap.len() as u64;
                    let decision_at = heap.peek().map_or(Time::ZERO, |(_, t)| t);
                    let admitted = self.parallel_round(pool, &profiles, &mut lbs, quota, &cfg_arc);
                    executed += admitted;
                    self.telemetry.count(self.tel.sched_batches, decision_at, 1);
                    self.telemetry
                        .gauge(self.tel.sched_heap, decision_at, running);
                    self.telemetry
                        .count(self.tel.sched_batch_ops, decision_at, admitted);
                    for (w, prev) in busy_prev.iter_mut().enumerate() {
                        let b = pool.busy_ns(w);
                        self.telemetry
                            .count(busy_ids[w], decision_at, (b - *prev) * 1000);
                        *prev = b;
                    }
                    let per_node = admitted as f64 / running.max(1) as f64;
                    ewma = 0.75 * ewma + 0.25 * per_node;
                    if per_node < FORK_MIN_YIELD {
                        serial_backoff = SERIAL_BACKOFF;
                    }
                    // The round moved clocks and may have parked nodes.
                    heap.clear();
                    for m in 0..nodes {
                        if self.status[m] == NodeStatus::Running {
                            heap.insert(m as u32, self.cores[m].now());
                        }
                    }
                    continue;
                }
            }
            serial_backoff = serial_backoff.saturating_sub(1);

            // Serial decision, identical to run_batched's.
            let Some((n, _)) = heap.pop() else {
                if self.status.iter().all(|s| *s == NodeStatus::Done) {
                    return Ok(());
                }
                if self.status.contains(&NodeStatus::Stalled) {
                    return Err(self.stall_error(executed));
                }
                return Err(SimError::Deadlock {
                    nodes: self.snapshots(),
                });
            };
            let limit = heap.peek();
            let decision_at = self.cores[n as usize].now();
            let ops_before = executed;
            self.telemetry.count(self.tel.sched_batches, decision_at, 1);
            self.telemetry
                .gauge(self.tel.sched_heap, decision_at, heap.len() as u64 + 1);
            let end = {
                let _serial = self.hostprof.phase(HostPhase::Serial);
                self.run_batch(n as usize, limit, lookahead, &mut executed)?
            };
            match end {
                BatchEnd::Reschedule => heap.insert(n, self.cores[n as usize].now()),
                BatchEnd::Parked => {}
                BatchEnd::Sync => {
                    heap.clear();
                    for m in 0..nodes {
                        if self.status[m] == NodeStatus::Running {
                            heap.insert(m as u32, self.cores[m].now());
                        }
                    }
                }
            }
            if opaque_serial {
                self.hostprof.count_opaque(executed - ops_before);
            }
            self.telemetry
                .count(self.tel.sched_batch_ops, decision_at, executed - ops_before);
        }
    }

    /// One fork/join round of the parallel policy: refresh stale
    /// lookahead bounds (in parallel), derive each runnable node's
    /// horizon, execute every admissible node's private prefix on the
    /// pool, then commit results in deterministic node order. Returns
    /// the number of ops dispatched across all forked nodes.
    fn parallel_round(
        &mut self,
        pool: &WorkerPool,
        profiles: &[ScanProfile],
        lbs: &mut [Time],
        quota: u64,
        cfg_arc: &Arc<MachineConfig>,
    ) -> u64 {
        let nodes = self.cfg.nodes as usize;
        let inject_stalls = self.injector.is_active();
        let page_bytes = self.cfg.geometry.page_bytes;

        // A cached bound goes stale only when alien coherence touched
        // the node (lb_dirty) or the node caught up to it; everything
        // else leaves it valid (conservative at worst).
        let mut now_of = vec![Time::ZERO; nodes];
        let mut rescan: Vec<usize> = Vec::new();
        for n in 0..nodes {
            if self.status[n] != NodeStatus::Running {
                continue;
            }
            now_of[n] = self.cores[n].now();
            if self.mems[n].lb_dirty || lbs[n] <= now_of[n] {
                rescan.push(n);
            }
        }

        // Move each node's private state into per-node mailbox slots the
        // pool jobs can own; everything is moved back at the join.
        let pt = Arc::new(std::mem::take(&mut self.pt));
        let cores = std::mem::take(&mut self.cores);
        let mems = std::mem::take(&mut self.mems);
        let streams = std::mem::take(&mut self.streams);
        let slots: Arc<Vec<Mutex<ForkSlot>>> = Arc::new(
            cores
                .into_iter()
                .zip(mems)
                .zip(streams)
                .map(|((core, mem), stream)| {
                    Mutex::new(ForkSlot {
                        bundle: Some(Bundle { core, mem, stream }),
                        lb: Time::MAX,
                        dispatches: 0,
                        status: NodeStatus::Running,
                        stop: ForkStop::None,
                    })
                })
                .collect(),
        );

        // Phase A: refresh stale bounds, one scan job per node.
        if !rescan.is_empty() {
            let _scan = self.hostprof.phase(HostPhase::Scan);
            let jobs: Vec<flashsim_engine::pool::Job> = rescan
                .iter()
                .map(|&n| {
                    let slots = Arc::clone(&slots);
                    let pt = Arc::clone(&pt);
                    let profile = profiles[n];
                    Box::new(move |_w: usize| {
                        let mut slot = lock_slot(&slots, n);
                        let slot = &mut *slot;
                        let Some(bundle) = slot.bundle.as_mut() else {
                            return;
                        };
                        let now = bundle.core.now();
                        bundle.mem.lb_dirty = false;
                        slot.lb = scan_lb(
                            &mut bundle.stream,
                            &bundle.mem.hier,
                            &pt,
                            now,
                            profile,
                            page_bytes,
                        );
                    }) as flashsim_engine::pool::Job
                })
                .collect();
            pool.run_all(jobs);
            for &n in &rescan {
                lbs[n] = lock_slot(&slots, n).lb;
            }
        }

        // Horizon per node: the smallest (bound, node) key among the
        // *other* runnable nodes — track the best and runner-up keys.
        let mut best: Option<(Time, u32)> = None;
        let mut second: Option<(Time, u32)> = None;
        for (n, &lb) in lbs.iter().enumerate().take(nodes) {
            if self.status[n] != NodeStatus::Running {
                continue;
            }
            let key = (lb, n as u32);
            if best.is_none_or(|b| key < b) {
                second = best;
                best = Some(key);
            } else if second.is_none_or(|s| key < s) {
                second = Some(key);
            }
        }

        // Phase B: fork every runnable node whose first op beats its
        // horizon.
        let mut tally = RoundTally::default();
        let mut forked = vec![false; nodes];
        let mut jobs: Vec<flashsim_engine::pool::Job> = Vec::new();
        for n in 0..nodes {
            if self.status[n] != NodeStatus::Running {
                continue;
            }
            let horizon = match best {
                Some((_, m)) if m as usize == n => second.map(|(t2, m2)| (m2, t2)),
                Some((t, m)) => Some((m, t)),
                None => None,
            };
            if let Some((m, lim)) = horizon {
                if (now_of[n], n as u32) >= (lim, m) {
                    tally.rejected_horizon += 1;
                    continue;
                }
            }
            forked[n] = true;
            let slots = Arc::clone(&slots);
            let pt = Arc::clone(&pt);
            let cfg = Arc::clone(cfg_arc);
            let profiler = self.profiler.clone();
            let telemetry = self.telemetry.clone();
            let faults = self.injector.clone();
            let tel = self.tel;
            let profile = profiles[n];
            jobs.push(Box::new(move |_w: usize| {
                let mut slot = lock_slot(&slots, n);
                let Some(bundle) = slot.bundle.take() else {
                    return;
                };
                let (bundle, dispatches, status, stop) = run_fork(
                    n,
                    bundle,
                    horizon,
                    quota,
                    profile,
                    inject_stalls,
                    &faults,
                    &pt,
                    &cfg,
                    &profiler,
                    &telemetry,
                    tel,
                );
                slot.bundle = Some(bundle);
                slot.dispatches = dispatches;
                slot.status = status;
                slot.stop = stop;
            }));
        }
        if !jobs.is_empty() {
            let _fork = self.hostprof.phase(HostPhase::Fork);
            pool.run_all(jobs);
        }

        // Join: reassemble the machine and apply cross-node effects in
        // deterministic node order. (All job clones of the Arcs are
        // dropped once run_all returns.)
        let _commit = self.hostprof.phase(HostPhase::Commit);
        let slots = Arc::try_unwrap(slots)
            .map_err(|_| ())
            .expect("fork jobs still hold round state"); // gate: allow
        self.pt = Arc::try_unwrap(pt)
            .map_err(|_| ())
            .expect("fork jobs still hold the page table"); // gate: allow
        let mut total = 0u64;
        for (n, slot) in slots.into_iter().enumerate() {
            let slot = slot.into_inner().unwrap_or_else(PoisonError::into_inner);
            let bundle = slot.bundle.expect("fork job lost its bundle"); // gate: allow
            self.cores.push(bundle.core);
            self.mems.push(bundle.mem);
            self.streams.push(bundle.stream);
            if forked[n] {
                total += slot.dispatches;
                tally.forked_nodes += 1;
                match slot.stop {
                    ForkStop::Horizon => tally.rejected_horizon += 1,
                    ForkStop::Shared => tally.rejected_shared += 1,
                    ForkStop::Sync => tally.stopped_sync += 1,
                    ForkStop::Quota => tally.stopped_quota += 1,
                    ForkStop::End => tally.stopped_end += 1,
                    ForkStop::None => {}
                }
                if slot.status != NodeStatus::Running {
                    self.status[n] = slot.status;
                }
            }
        }
        tally.admitted_ops = total;
        self.hostprof.round(tally);
        total
    }

    /// Executes a run of ops on node `n` — the popped laggard — until a
    /// continuation rule fails. `limit` is the runner-up's `(node, clock)`
    /// heap key, or `None` when no other node is runnable (then nothing
    /// can contest the schedule and the batch runs to a sync op, stream
    /// end, stall, fault, or budget exhaustion).
    ///
    /// Per-op admission reproduces the reference loop's decision order
    /// exactly: (1) the injector stall check the reference sweep would
    /// have run before this op; (2) the schedule test — any op may run
    /// while `(clock, n)` still beats the runner-up (the reference scan
    /// would pick `n`), and past that point only node-private ops within
    /// the lookahead window; (3) the watchdog budget; (4) dispatch, with
    /// OS timer ticks charged inline (per-node state, not a batch
    /// breaker). Sync ops end the batch *unconsumed* and are executed by
    /// the caller-visible [`BatchEnd::Sync`] arm so barrier/lock state
    /// changes happen outside the borrow of the execution environment.
    fn run_batch(
        &mut self,
        n: usize,
        limit: Option<(u32, Time)>,
        lookahead: TimeDelta,
        executed: &mut u64,
    ) -> Result<BatchEnd, SimError> {
        enum InnerEnd {
            Reschedule,
            Sync,
            Parked,
            Budget,
            Fault(SimError),
        }
        let budget = self.cfg.watchdog.max_ops;
        let inject_stalls = self.injector.is_active();
        let end;
        {
            // Split borrows: the core is disjoint from the memory state.
            // One environment serves the whole batch — the per-op cost is
            // the loop body, not borrow + Arc traffic.
            let Machine {
                cores,
                mems,
                memsys,
                pt,
                alloc,
                segments,
                cfg,
                tracer,
                profiler,
                injector,
                telemetry,
                spans,
                tel,
                fault,
                streams,
                status,
                ..
            } = self;
            let mut env = MachineEnv {
                node: n,
                mems,
                memsys: &mut **memsys,
                pt,
                alloc,
                segments,
                cfg,
                clock: cfg.cpu.clock(),
                tracer: tracer.clone(),
                faults: injector,
                profiler: profiler.clone(),
                telemetry: telemetry.clone(),
                spans: spans.clone(),
                tel: *tel,
                in_op: true,
                fault,
            };
            loop {
                // (1) The stall sweep the reference loop runs before every
                // op. Only the executing node's consumed count moves
                // inside a batch, so checking just `n` here plus all
                // Running nodes per scheduling decision is equivalent.
                if inject_stalls && env.faults.node_stalled(n as u32, streams[n].consumed()) {
                    status[n] = NodeStatus::Stalled;
                    end = InnerEnd::Parked;
                    break;
                }
                // (2) Would the reference scan still pick `n`?
                let now = cores[n].now();
                let strict_win = match limit {
                    None => true,
                    Some((m, lim)) => (now, n as u32) < (lim, m),
                };
                if !strict_win {
                    // Past the strict win, only node-private ops may run
                    // (they touch no shared timeline, so they commute
                    // with the runner-up's ops), and only within the
                    // conservative lookahead window.
                    let Some((_, lim)) = limit else {
                        unreachable!() // gate: allow
                    };
                    let overrun_ok = now < lim + lookahead
                        && streams[n].peek_op().is_some_and(|op| op.class.is_local());
                    if !overrun_ok {
                        end = InnerEnd::Reschedule;
                        break;
                    }
                }
                // (3) The watchdog budget, checked per dispatch as in the
                // reference loop (sync ops and end-of-stream discovery
                // both count as dispatches there).
                if let Some(b) = budget {
                    if *executed >= b {
                        end = InnerEnd::Budget;
                        break;
                    }
                }
                // (4) Dispatch.
                let Some(&op) = streams[n].peek_op() else {
                    *executed += 1;
                    let t = cores[n].drain();
                    cores[n].set_time(t);
                    status[n] = NodeStatus::Done;
                    end = InnerEnd::Parked;
                    break;
                };
                if op.class.is_sync() {
                    // Consumed and executed by the caller, outside this
                    // environment's borrows.
                    end = InnerEnd::Sync;
                    break;
                }
                *executed += 1;
                streams[n].advance();
                let op_start = cores[n].now();
                cores[n].execute(&op, &mut env);
                profiler.mark_op(
                    n as u32,
                    op_start,
                    cores[n].now().saturating_since(op_start),
                );
                if let Some(e) = env.fault.take() {
                    end = InnerEnd::Fault(e);
                    break;
                }
                // OS timer ticks touch only per-node state; charge them
                // inline exactly as `charge_ticks` would.
                if let Some(interval) = env.cfg.os.timer_interval {
                    let now = cores[n].now();
                    while env.mems[n].next_tick <= now {
                        env.mems[n].next_tick += interval;
                        let at = cores[n].now();
                        profiler.charge_wall(n as u32, StallClass::Os, at, env.cfg.os.timer_cost);
                        cores[n].set_time(at + env.cfg.os.timer_cost);
                    }
                }
            }
        }
        match end {
            InnerEnd::Reschedule => Ok(BatchEnd::Reschedule),
            InnerEnd::Parked => Ok(BatchEnd::Parked),
            InnerEnd::Budget => Err(self.stall_error(*executed)),
            InnerEnd::Fault(e) => Err(e),
            InnerEnd::Sync => {
                *executed += 1;
                let op = self.streams[n].next_op().expect("peeked sync op vanished"); // gate: allow
                self.handle_sync(n, &op)?;
                Ok(BatchEnd::Sync)
            }
        }
    }

    /// Per-node state snapshots for failure reports.
    fn snapshots(&self) -> Vec<NodeSnapshot> {
        (0..self.cfg.nodes as usize)
            .map(|n| {
                let state = match self.status[n] {
                    NodeStatus::Running => NodeState::Running,
                    NodeStatus::Done => NodeState::Done,
                    NodeStatus::Stalled => NodeState::Stalled,
                    NodeStatus::AtBarrier(id) => NodeState::AtBarrier {
                        id,
                        arrived: self.barrier_arrivals.get(&id).map_or(0, |v| v.len() as u32),
                        expected: self.cfg.nodes,
                    },
                    NodeStatus::WaitingLock(id) => {
                        let lock = self.locks.get(&id);
                        NodeState::WaitingLock {
                            id,
                            holder: lock.and_then(|l| l.held_by).map(|h| h as u32),
                            queue_len: lock.map_or(0, |l| l.queue.len() as u32),
                        }
                    }
                };
                NodeSnapshot {
                    node: n as u32,
                    at: self.cores[n].now(),
                    ops: self.streams[n].consumed(),
                    state,
                }
            })
            .collect()
    }

    fn stall_error(&self, executed: u64) -> SimError {
        let snap = self.tracer.snapshot();
        let tail = self.cfg.watchdog.trace_tail.min(snap.events.len());
        SimError::Stalled {
            ops_executed: executed,
            nodes: self.snapshots(),
            recent: snap.events[snap.events.len() - tail..].to_vec(),
        }
    }

    fn timeout_error(
        &self,
        wall_start: std::time::Instant,
        budget: std::time::Duration,
    ) -> SimError {
        let snap = self.tracer.snapshot();
        let tail = self.cfg.watchdog.trace_tail.min(snap.events.len());
        SimError::Timeout {
            elapsed: wall_start.elapsed(),
            budget,
            nodes: self.snapshots(),
            recent: snap.events[snap.events.len() - tail..].to_vec(),
        }
    }

    /// Executes exactly one op on node `n` (reference policy).
    fn step_node(&mut self, n: usize) -> Result<(), SimError> {
        let Some(op) = self.streams[n].next_op() else {
            let t = self.cores[n].drain();
            self.cores[n].set_time(t);
            self.status[n] = NodeStatus::Done;
            return Ok(());
        };

        if op.class.is_sync() {
            return self.handle_sync(n, &op);
        }

        // Split borrows: the core is disjoint from the memory state.
        let Machine {
            cores,
            mems,
            memsys,
            pt,
            alloc,
            segments,
            cfg,
            tracer,
            profiler,
            injector,
            telemetry,
            spans,
            tel,
            fault,
            ..
        } = self;
        let mut env = MachineEnv {
            node: n,
            mems,
            memsys: &mut **memsys,
            pt,
            alloc,
            segments,
            cfg,
            clock: cfg.cpu.clock(),
            tracer: tracer.clone(),
            faults: injector,
            profiler: profiler.clone(),
            telemetry: telemetry.clone(),
            spans: spans.clone(),
            tel: *tel,
            in_op: true,
            fault,
        };
        let op_start = cores[n].now();
        cores[n].execute(&op, &mut env);
        profiler.mark_op(
            n as u32,
            op_start,
            cores[n].now().saturating_since(op_start),
        );
        if let Some(e) = self.fault.take() {
            return Err(e);
        }
        self.charge_ticks(n);
        Ok(())
    }

    fn handle_sync(&mut self, n: usize, op: &flashsim_isa::Op) -> Result<(), SimError> {
        match op.class {
            OpClass::Barrier => {
                let t = self.cores[n].drain();
                let overhead = self.barrier_overhead();
                self.status[n] = NodeStatus::AtBarrier(op.id);
                let arrivals = self.barrier_arrivals.entry(op.id).or_default();
                arrivals.push((n, t));
                if arrivals.len() == self.cfg.nodes as usize {
                    let release =
                        arrivals.iter().map(|(_, t)| *t).fold(Time::ZERO, Time::max) + overhead;
                    let woken: Vec<(usize, Time)> = arrivals.clone();
                    self.barrier_arrivals.remove(&op.id);
                    self.barrier_releases.push((op.id, release));
                    // Per-node clock skew at the barrier: spread between
                    // the first and last arrival over the released set.
                    // Arrival times and the release instant are
                    // policy-invariant, so the gauge is too.
                    let first = woken.iter().map(|(_, t)| *t).fold(release, Time::min);
                    let last = woken.iter().map(|(_, t)| *t).fold(Time::ZERO, Time::max);
                    self.telemetry.gauge(
                        self.tel.barrier_skew,
                        release,
                        last.saturating_since(first).as_ps(),
                    );
                    if self.tracer.enabled(TraceCategory::Machine) {
                        self.tracer.emit(
                            release,
                            TraceCategory::Machine,
                            "barrier_release",
                            n as u32,
                            u64::from(op.id),
                            u64::from(self.cfg.nodes),
                        );
                    }
                    for (m, arrived) in woken {
                        // Arrival-to-release is synchronization stall.
                        self.profiler.charge_wall(
                            m as u32,
                            StallClass::Sync,
                            arrived,
                            release.saturating_since(arrived),
                        );
                        self.cores[m].set_time(release);
                        self.status[m] = NodeStatus::Running;
                    }
                    // The machine is now quiescent: every node Running at
                    // the release time, no arrival or lock queues, no
                    // transaction mid-flight — and every stable cumulative
                    // total is policy-invariant, which is what makes the
                    // stream's closed bucket (deltas since the previous
                    // release) prefix-stable across reruns and policies.
                    if self.stream.is_some() {
                        let _stream = self.hostprof.phase(HostPhase::Stream);
                        let totals = self.stream_totals(release);
                        let account = self.stream_account(release);
                        if let Some(em) = self.stream.as_mut() {
                            em.bucket(op.id, release.as_ps(), &totals, account.as_deref());
                        }
                    }
                    // Emit a checkpoint if a sink is attached (take/put-
                    // back so the sink can borrow the machine-produced
                    // text without aliasing `self`). The stream's ckpt
                    // event goes first: the snapshot then stores the
                    // emitter position *after* the event, so a resume
                    // continues past it instead of re-emitting it.
                    if let Some(mut sink) = self.ckpt_sink.take() {
                        let _ckpt = self.hostprof.phase(HostPhase::Ckpt);
                        let seq = self.ckpt_seq;
                        self.ckpt_seq += 1;
                        if let Some(em) = self.stream.as_mut() {
                            let _stream = self.hostprof.phase(HostPhase::Stream);
                            em.ckpt(seq, release.as_ps());
                        }
                        let text = self.checkpoint();
                        sink(seq, release, &text);
                        self.ckpt_sink = Some(sink);
                    }
                }
            }
            OpClass::LockAcquire => {
                let t = self.cores[n].drain();
                self.lock_addr.insert(op.id, op.addr);
                let acquired = {
                    let lock = self.locks.entry(op.id).or_default();
                    if lock.held_by.is_none() {
                        lock.held_by = Some(n);
                        true
                    } else {
                        lock.queue.push((n, t));
                        false
                    }
                };
                if acquired {
                    if self.tracer.enabled(TraceCategory::Machine) {
                        self.tracer.emit(
                            t,
                            TraceCategory::Machine,
                            "lock_acquire",
                            n as u32,
                            u64::from(op.id),
                            0,
                        );
                    }
                    self.acquire_lock_line(n, op.addr, t)?;
                } else {
                    self.status[n] = NodeStatus::WaitingLock(op.id);
                }
            }
            OpClass::LockRelease => {
                let t = self.cores[n].drain();
                let next = {
                    let Some(lock) = self.locks.get_mut(&op.id) else {
                        return Err(SimError::UnheldLock {
                            node: n as u32,
                            lock: op.id,
                            holder: None,
                        });
                    };
                    if lock.held_by != Some(n) {
                        return Err(SimError::UnheldLock {
                            node: n as u32,
                            lock: op.id,
                            holder: lock.held_by.map(|h| h as u32),
                        });
                    }
                    lock.held_by = None;
                    if lock.queue.is_empty() {
                        None
                    } else {
                        let (nx, since) = lock.queue.remove(0);
                        lock.held_by = Some(nx);
                        Some((nx, since))
                    }
                };
                if let Some((next, since)) = next {
                    self.status[next] = NodeStatus::Running;
                    let at = self.cores[next].now().max(t);
                    // Queue time on the lock is synchronization stall.
                    self.profiler.charge_wall(
                        next as u32,
                        StallClass::Sync,
                        since,
                        at.saturating_since(since),
                    );
                    self.cores[next].set_time(at);
                    if self.tracer.enabled(TraceCategory::Machine) {
                        self.tracer.emit(
                            at,
                            TraceCategory::Machine,
                            "lock_handoff",
                            next as u32,
                            u64::from(op.id),
                            n as u64,
                        );
                    }
                    let addr = self.lock_addr[&op.id];
                    self.acquire_lock_line(next, addr, at)?;
                }
            }
            _ => unreachable!(), // gate: allow
        }
        Ok(())
    }

    /// The coherence transaction behind a lock hand-off: the new holder
    /// takes the lock line exclusive.
    fn acquire_lock_line(&mut self, n: usize, addr: VAddr, t: Time) -> Result<(), SimError> {
        let Machine {
            mems,
            memsys,
            pt,
            alloc,
            segments,
            cfg,
            cores,
            tracer,
            profiler,
            injector,
            telemetry,
            spans,
            tel,
            fault,
            ..
        } = self;
        let mut env = MachineEnv {
            node: n,
            mems,
            memsys: &mut **memsys,
            pt,
            alloc,
            segments,
            cfg,
            clock: cfg.cpu.clock(),
            tracer: tracer.clone(),
            faults: injector,
            profiler: profiler.clone(),
            telemetry: telemetry.clone(),
            spans: spans.clone(),
            tel: *tel,
            in_op: false,
            fault,
        };
        let res = env.resolve(addr, MemAccessKind::Write, t);
        if let Some(e) = self.fault.take() {
            return Err(e);
        }
        // The hand-off's coherence transaction is synchronization cost
        // (minus the TLB refill the environment already charged).
        profiler.charge_wall(
            n as u32,
            StallClass::Sync,
            t,
            res.done_at
                .saturating_since(t)
                .saturating_sub(res.tlb_refill),
        );
        cores[n].set_time(res.done_at);
        Ok(())
    }

    fn collect_result(&mut self, wall_seconds: f64) -> RunResult {
        let end = self
            .cores
            .iter()
            .map(|c| c.now())
            .fold(Time::ZERO, Time::max);
        if self.tracer.enabled(TraceCategory::Machine) {
            self.tracer.emit(
                end,
                TraceCategory::Machine,
                "run_end",
                0,
                u64::from(self.cfg.nodes),
                0,
            );
        }
        self.barrier_releases.sort_by_key(|(id, _)| *id);

        let start = match self.timing_start {
            None => Time::ZERO,
            Some(id) => self
                .barrier_releases
                .iter()
                .find(|(b, _)| *b == id)
                .map(|(_, t)| *t)
                .unwrap_or(Time::ZERO),
        };

        let mut stats = StatSet::new();
        for (n, core) in self.cores.iter().enumerate() {
            stats.absorb_flat(&core.stats());
            let mem = &self.mems[n];
            stats.add("l1.hits", mem.hier.l1().hits() as f64);
            stats.add("l1.misses", mem.hier.l1().misses() as f64);
            stats.add("l2.hits", mem.hier.l2().hits() as f64);
            stats.add("l2.misses", mem.hier.l2().misses() as f64);
            stats.add("l2.evictions", mem.hier.l2().evictions() as f64);
            stats.add("os.page_faults", mem.page_faults as f64);
            stats.add("os.tlb_refills", mem.tlb_refills as f64);
            if let Some(tlb) = &mem.tlb {
                stats.add("tlb.misses", tlb.misses() as f64);
                stats.add("tlb.hits", tlb.hits() as f64);
            }
        }
        stats.absorb_flat(&self.memsys.stats());
        self.injector.absorb_into(&mut stats);

        // Accounting closes over the whole run: every node is extended to
        // the machine end time, so per-node class totals all sum to the
        // same total and trailing idle reads as compute.
        let ends = vec![end; self.cfg.nodes as usize];
        let accounting = self.profiler.snapshot(&ends);
        if let Some(acc) = &accounting {
            for (class, total) in StallClass::ALL.iter().zip(acc.class_totals()) {
                stats.set(format!("account.{}.ps", class.key()), total as f64);
            }
        }

        let ops_per_node: Vec<u64> = self.streams.iter().map(|s| s.consumed()).collect();
        let total_ops: u64 = ops_per_node.iter().sum();
        let events_per_sec = if wall_seconds > 0.0 {
            total_ops as f64 / wall_seconds
        } else {
            f64::NAN
        };
        let manifest = RunManifest {
            config: self.cfg.label(),
            nodes: self.cfg.nodes,
            workload: self.workload.clone(),
            seed: self.workload_seed,
            sched: self.cfg.sched.key().to_owned(),
            faults: self
                .cfg
                .faults
                .as_ref()
                .filter(|p| p.is_active())
                .map(flashsim_engine::FaultPlan::summary),
            wall_seconds,
            total_ops,
            simulated_seconds: (end - Time::ZERO).as_ns_f64() / 1e9,
            events_per_sec,
            sim_mips: events_per_sec / 1e6,
            account: accounting
                .as_ref()
                .map(|acc| StallClass::ALL.map(|c| acc.fraction(c))),
            spans: self.cfg.spans.as_ref().map(|p| p.describe()),
            stream: self.cfg.stream.as_ref().map(|p| p.display().to_string()),
        };

        RunResult {
            total_time: end - Time::ZERO,
            parallel_time: end - start,
            ops_per_node,
            barrier_releases: self.barrier_releases.clone(),
            stats,
            manifest,
            accounting,
            telemetry: self.telemetry.snapshot(end),
            spans: self.spans.snapshot(),
            hostprof: self.hostprof.report(),
        }
    }
}

/// Errors from [`Machine::restore`].
#[derive(Debug)]
pub enum RestoreError {
    /// The machine could not be built for the program.
    Build(MachineError),
    /// The checkpoint was rejected: corrupt, truncated, structurally
    /// wrong, or written by a run with a different identity (config,
    /// workload, seed, policy, or fault plan).
    Ckpt(CkptError),
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreError::Build(e) => write!(f, "machine build failed: {e}"),
            RestoreError::Ckpt(e) => write!(f, "checkpoint rejected: {e}"),
        }
    }
}

impl std::error::Error for RestoreError {}

impl From<MachineError> for RestoreError {
    fn from(e: MachineError) -> RestoreError {
        RestoreError::Build(e)
    }
}

impl From<CkptError> for RestoreError {
    fn from(e: CkptError) -> RestoreError {
        RestoreError::Ckpt(e)
    }
}

impl Machine {
    /// Attaches a checkpoint sink: at every barrier release — the
    /// machine's natural quiescent points (all node clocks equal, no
    /// arrival or lock-wait queues, no memory transaction mid-flight) —
    /// the machine serializes its complete state and hands the sink
    /// `(sequence, release_time, checkpoint_text)`. The sink owns
    /// persistence (temp-file + rename for crash consistency is the
    /// runner's job); emitting checkpoints never perturbs simulated
    /// state, so an instrumented run stays byte-identical to a bare one.
    pub fn attach_ckpt_sink(&mut self, sink: CkptSink) {
        self.ckpt_sink = Some(sink);
    }

    /// The run-identity string embedded (hashed and verbatim) in every
    /// checkpoint this machine writes. It covers everything that shapes
    /// simulated behaviour — config, workload, seed, scheduling policy,
    /// fault plan, telemetry cadence, span plan — so a checkpoint can
    /// never restore against the wrong run. Host-side knobs (watchdog,
    /// heartbeat, stream sink, hostprof) are deliberately excluded:
    /// resuming with a different wall-clock budget or stream destination is
    /// legitimate, and two runs that differ only in observability sinks
    /// share a provenance hash — which is exactly the grouping key the
    /// stream's cross-file prefix-stability check relies on.
    pub fn provenance(&self) -> String {
        format!(
            "flashsim nodes={} cpu={:?} os={:?} memsys={:?} geometry={:?} l2_hit={:?} \
             barrier=({:?},{:?}) sched={} faults={:?} telemetry={:?} profile={} spans={:?} \
             workload={} seed={:?}",
            self.cfg.nodes,
            self.cfg.cpu,
            self.cfg.os,
            self.cfg.memsys,
            self.cfg.geometry,
            self.cfg.l2_hit,
            self.cfg.barrier_base,
            self.cfg.barrier_per_node,
            self.cfg.sched.key(),
            self.cfg.faults,
            self.cfg.telemetry,
            self.cfg.profile,
            self.cfg.spans,
            self.workload,
            self.workload_seed,
        )
    }

    /// Serializes the complete simulation state into a `flashsim-ckpt-v1`
    /// text. Callable only at quiescent points (barrier releases) — the
    /// scheduler's in-flight state (arrival queues, lock waiters, batch
    /// scratch) is asserted empty rather than saved, which is what makes
    /// the format closed under every layer's `save_ckpt`.
    pub fn checkpoint(&self) -> String {
        debug_assert!(
            self.barrier_arrivals.is_empty(),
            "checkpoint outside a quiescent point"
        );
        let mut w = CkptWriter::new(&self.provenance());
        w.section("machine");
        w.u64("ckpt_seq", self.ckpt_seq);
        // Stream emitter position, so a resumed run continues the live
        // event stream exactly where this snapshot left it (the ckpt
        // event for this very snapshot is already behind the position).
        let (stream_seq, stream_last_ps) = self.stream_position();
        w.u64("stream_seq", stream_seq);
        w.u64("stream_last_ps", stream_last_ps);
        w.u64("nodes", u64::from(self.cfg.nodes));
        w.u64("barrier_releases", self.barrier_releases.len() as u64);
        for (id, t) in &self.barrier_releases {
            w.u64s("rel", &[u64::from(*id), t.as_ps()]);
        }
        let mut lock_ids: Vec<u32> = self.locks.keys().copied().collect();
        lock_ids.sort_unstable();
        w.u64("locks", lock_ids.len() as u64);
        for id in lock_ids {
            let lock = &self.locks[&id];
            debug_assert!(lock.queue.is_empty(), "lock waiters at a quiescent point");
            w.u64s(
                "lock",
                &[
                    u64::from(id),
                    lock.held_by.map_or(u64::MAX, |h| h as u64),
                    self.lock_addr.get(&id).map_or(u64::MAX, |a| a.get()),
                ],
            );
        }
        for n in 0..self.cfg.nodes as usize {
            w.section(&format!("node{n}"));
            w.u64("consumed", self.streams[n].consumed());
            self.cores[n].save_ckpt(&mut w);
            let mem = &self.mems[n];
            mem.hier.save_ckpt(&mut w);
            w.u64("has_tlb", u64::from(mem.tlb.is_some()));
            if let Some(tlb) = &mem.tlb {
                tlb.save_ckpt(&mut w);
            }
            let mut pend: Vec<(u64, Time, LatencyBreakdown)> = mem
                .pending
                .iter()
                .map(|(l, &(t, bd))| (l.get(), t, bd))
                .collect();
            pend.sort_unstable_by_key(|&(l, _, _)| l);
            w.u64("pending", pend.len() as u64);
            for (line, arrives, bd) in pend {
                w.u64s(
                    "pend",
                    &[
                        line,
                        arrives.as_ps(),
                        bd.occupancy.as_ps(),
                        bd.network.as_ps(),
                        bd.memory.as_ps(),
                    ],
                );
            }
            w.u64("page_faults", mem.page_faults);
            w.u64("tlb_refills", mem.tlb_refills);
            w.time("next_tick", mem.next_tick);
        }
        w.section("os");
        self.pt.save_ckpt(&mut w);
        self.alloc.save_ckpt(&mut w);
        w.section("memsys");
        self.memsys.save_ckpt(&mut w);
        self.injector.save_ckpt(&mut w);
        self.profiler.save_ckpt(&mut w);
        self.telemetry.save_ckpt(&mut w);
        self.spans.save_ckpt(&mut w);
        w.finish()
    }

    /// Rebuilds a machine from a checkpoint written by
    /// [`Machine::checkpoint`] under the same `cfg` and `program`.
    /// Continuing the restored machine with [`Machine::run`] produces
    /// results byte-identical to the uninterrupted run.
    ///
    /// # Errors
    ///
    /// [`RestoreError::Build`] if the machine cannot be constructed;
    /// [`RestoreError::Ckpt`] if the checkpoint is corrupt, truncated, or
    /// carries a different run identity (wrong config, workload, seed,
    /// policy, or fault plan). Failing closed here is what lets callers
    /// degrade gracefully to a from-zero restart.
    pub fn restore(
        cfg: MachineConfig,
        program: &dyn Program,
        text: &str,
    ) -> Result<Machine, RestoreError> {
        let parse = |key: &str, value: String| CkptError::Parse {
            key: key.to_string(),
            value,
        };
        let mut m = Machine::new(cfg, program)?;
        let mut r = CkptReader::open(text)?;
        r.expect_provenance(&m.provenance())?;
        r.section("machine")?;
        m.ckpt_seq = r.u64("ckpt_seq")?;
        m.stream_pos = (r.u64("stream_seq")?, r.u64("stream_last_ps")?);
        let nodes = r.u64("nodes")?;
        if nodes != u64::from(m.cfg.nodes) {
            return Err(parse("nodes", nodes.to_string()).into());
        }
        for _ in 0..r.u64("barrier_releases")? {
            let v = r.u64s("rel")?;
            let [id, ps] =
                <[u64; 2]>::try_from(v.as_slice()).map_err(|_| parse("rel", format!("{v:?}")))?;
            m.barrier_releases.push((id as u32, Time::from_ps(ps)));
        }
        for _ in 0..r.u64("locks")? {
            let v = r.u64s("lock")?;
            let [id, held, addr] =
                <[u64; 3]>::try_from(v.as_slice()).map_err(|_| parse("lock", format!("{v:?}")))?;
            m.locks.insert(
                id as u32,
                LockState {
                    held_by: (held != u64::MAX).then_some(held as usize),
                    queue: Vec::new(),
                },
            );
            if addr != u64::MAX {
                m.lock_addr.insert(id as u32, VAddr(addr));
            }
        }
        for n in 0..m.cfg.nodes as usize {
            r.section(&format!("node{n}"))?;
            let consumed = r.u64("consumed")?;
            // Fast-forward the deterministic op stream to its cursor; the
            // generator re-derives every op, so none need to be stored.
            for _ in 0..consumed {
                if m.streams[n].next_op().is_none() {
                    return Err(parse("consumed", consumed.to_string()).into());
                }
            }
            m.cores[n].load_ckpt(&mut r)?;
            m.mems[n].hier.load_ckpt(&mut r)?;
            let has_tlb = r.u64("has_tlb")? != 0;
            if has_tlb != m.mems[n].tlb.is_some() {
                return Err(parse("has_tlb", has_tlb.to_string()).into());
            }
            if let Some(tlb) = &mut m.mems[n].tlb {
                tlb.load_ckpt(&mut r)?;
            }
            m.mems[n].pending.clear();
            for _ in 0..r.u64("pending")? {
                let v = r.u64s("pend")?;
                let [line, arrives, occ, net, memory] = <[u64; 5]>::try_from(v.as_slice())
                    .map_err(|_| parse("pend", format!("{v:?}")))?;
                m.mems[n].pending.insert(
                    LineAddr(line),
                    (
                        Time::from_ps(arrives),
                        LatencyBreakdown {
                            occupancy: TimeDelta::from_ps(occ),
                            network: TimeDelta::from_ps(net),
                            memory: TimeDelta::from_ps(memory),
                        },
                    ),
                );
            }
            m.mems[n].page_faults = r.u64("page_faults")?;
            m.mems[n].tlb_refills = r.u64("tlb_refills")?;
            m.mems[n].next_tick = r.time("next_tick")?;
        }
        r.section("os")?;
        m.pt.load_ckpt(&mut r)?;
        m.alloc.load_ckpt(&mut r)?;
        r.section("memsys")?;
        m.memsys.load_ckpt(&mut r)?;
        m.injector.load_ckpt(&mut r)?;
        m.profiler.load_ckpt(&mut r)?;
        m.telemetry.load_ckpt(&mut r)?;
        m.spans.load_ckpt(&mut r)?;
        r.finish()?;
        Ok(m)
    }
}

/// Convenience: build and run in one call.
///
/// # Errors
///
/// Returns [`SimError::Build`] for construction failures and propagates
/// every structured failure from [`Machine::run`].
pub fn run_program(cfg: MachineConfig, program: &dyn Program) -> Result<RunResult, SimError> {
    Machine::new(cfg, program)?.run()
}
