//! Structured simulation failures.
//!
//! The validation methodology only closes its loop if every run either
//! completes or fails *diagnosably*: a panic that kills the process mid
//! run-matrix tells you nothing about the other cells, and a hang tells
//! you even less. [`SimError`] is the machine layer's structured answer —
//! every way a run can go wrong (deadlock, unmapped access, physical
//! memory exhaustion, lock misuse, loss of forward progress) carries a
//! [`NodeSnapshot`] of where each node was and, for watchdog trips, the
//! tail of the flight-recorder ring, so a failed cell is a diagnosis
//! rather than a corpse.

use crate::config::MachineConfig;
use crate::machine::MachineError;
use flashsim_engine::{Time, TraceEvent};
use flashsim_isa::VAddr;
use std::fmt;

/// What one node was doing when a run failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeState {
    /// Executing ops normally.
    Running,
    /// Finished its op stream.
    Done,
    /// Halted by stalled-node fault injection (or an external stall).
    Stalled,
    /// Blocked at a barrier that never released.
    AtBarrier {
        /// Barrier id the node is waiting at.
        id: u32,
        /// Nodes that have arrived at this barrier so far.
        arrived: u32,
        /// Nodes the barrier needs before it releases.
        expected: u32,
    },
    /// Queued on a lock that was never released.
    WaitingLock {
        /// Lock id the node is queued on.
        id: u32,
        /// Current holder of the lock, if any.
        holder: Option<u32>,
        /// Nodes queued behind the holder (including this one).
        queue_len: u32,
    },
}

impl fmt::Display for NodeState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeState::Running => write!(f, "running"),
            NodeState::Done => write!(f, "done"),
            NodeState::Stalled => write!(f, "stalled"),
            NodeState::AtBarrier {
                id,
                arrived,
                expected,
            } => write!(f, "at barrier {id} ({arrived}/{expected} arrived)"),
            NodeState::WaitingLock {
                id,
                holder,
                queue_len,
            } => match holder {
                Some(h) => write!(
                    f,
                    "waiting on lock {id} (held by node {h}, queue {queue_len})"
                ),
                None => write!(f, "waiting on lock {id} (unheld, queue {queue_len})"),
            },
        }
    }
}

/// A per-node state snapshot attached to failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSnapshot {
    /// Node id.
    pub node: u32,
    /// The node's local clock when the snapshot was taken.
    pub at: Time,
    /// Ops the node had executed.
    pub ops: u64,
    /// What the node was doing.
    pub state: NodeState,
}

impl fmt::Display for NodeSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "node {}: {} (t={}, {} ops)",
            self.node, self.state, self.at, self.ops
        )
    }
}

/// A structured simulation failure.
///
/// Returned by [`crate::machine::Machine::run`]; library code never
/// panics for these conditions.
#[derive(Debug, Clone)]
pub enum SimError {
    /// The machine could not be built for the program.
    Build(MachineError),
    /// No node can make progress: every non-finished node is blocked at a
    /// barrier or lock that will never release.
    Deadlock {
        /// Where each node was, including which barrier/lock blocks it.
        nodes: Vec<NodeSnapshot>,
    },
    /// An access touched an address outside every declared segment.
    UnmappedAddress {
        /// The accessing node.
        node: u32,
        /// The offending virtual address.
        addr: VAddr,
    },
    /// The frame allocator could not back a page.
    OutOfPhysicalMemory {
        /// The accessing node.
        node: u32,
        /// The home node whose memory is exhausted.
        home: u32,
        /// Virtual page number of the failed mapping.
        vpn: u64,
    },
    /// A lock was released while not held, or by a non-holder.
    UnheldLock {
        /// The releasing node.
        node: u32,
        /// Lock id.
        lock: u32,
        /// Who actually held the lock, if anyone.
        holder: Option<u32>,
    },
    /// The run lost forward progress: the watchdog budget expired or a
    /// fault-injected node stall starved the rest of the machine.
    Stalled {
        /// Ops executed machine-wide before progress stopped.
        ops_executed: u64,
        /// Where each node was.
        nodes: Vec<NodeSnapshot>,
        /// Tail of the flight-recorder ring (empty if no tracer attached).
        recent: Vec<TraceEvent>,
    },
    /// The run exceeded its wall-clock budget. Unlike [`Stalled`]
    /// (simulated progress lost), the simulation may be perfectly healthy
    /// — just too slow for the harness's patience; the snapshot and trace
    /// tail say where the time went.
    ///
    /// [`Stalled`]: SimError::Stalled
    Timeout {
        /// Host wall-clock time elapsed when the watchdog tripped.
        elapsed: std::time::Duration,
        /// The configured wall-clock budget.
        budget: std::time::Duration,
        /// Where each node was.
        nodes: Vec<NodeSnapshot>,
        /// Tail of the flight-recorder ring (empty if no tracer attached).
        recent: Vec<TraceEvent>,
    },
    /// A panic escaped a supervised cell; the payload message is kept.
    Panic(String),
}

impl SimError {
    /// A short stable kind tag (`"deadlock"`, `"stalled"`, ...) for
    /// survival matrices and machine-readable reports.
    pub fn kind(&self) -> &'static str {
        match self {
            SimError::Build(_) => "build",
            SimError::Deadlock { .. } => "deadlock",
            SimError::UnmappedAddress { .. } => "unmapped",
            SimError::OutOfPhysicalMemory { .. } => "oom",
            SimError::UnheldLock { .. } => "unheld_lock",
            SimError::Stalled { .. } => "stalled",
            SimError::Timeout { .. } => "timeout",
            SimError::Panic(_) => "panic",
        }
    }
}

fn write_nodes(f: &mut fmt::Formatter<'_>, nodes: &[NodeSnapshot]) -> fmt::Result {
    for n in nodes {
        write!(f, "\n  {n}")?;
    }
    Ok(())
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Build(e) => write!(f, "machine build failed: {e}"),
            SimError::Deadlock { nodes } => {
                write!(f, "deadlock: no runnable node")?;
                write_nodes(f, nodes)
            }
            SimError::UnmappedAddress { node, addr } => {
                write!(f, "node {node}: access to unmapped address {addr}")
            }
            SimError::OutOfPhysicalMemory { node, home, vpn } => write!(
                f,
                "node {node}: home node {home} out of physical memory mapping vpn {vpn:#x}"
            ),
            SimError::UnheldLock { node, lock, holder } => match holder {
                Some(h) => write!(f, "node {node}: released lock {lock} held by node {h}"),
                None => write!(f, "node {node}: released unheld lock {lock}"),
            },
            SimError::Stalled {
                ops_executed,
                nodes,
                recent,
            } => {
                write!(
                    f,
                    "stalled: no forward progress after {ops_executed} ops \
                     ({} recent trace events)",
                    recent.len()
                )?;
                write_nodes(f, nodes)
            }
            SimError::Timeout {
                elapsed,
                budget,
                nodes,
                recent,
            } => {
                write!(
                    f,
                    "timeout: wall clock {:.1}s exceeded budget {:.1}s \
                     ({} recent trace events)",
                    elapsed.as_secs_f64(),
                    budget.as_secs_f64(),
                    recent.len()
                )?;
                write_nodes(f, nodes)
            }
            SimError::Panic(msg) => write!(f, "panicked: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<MachineError> for SimError {
    fn from(e: MachineError) -> SimError {
        SimError::Build(e)
    }
}

/// Forward-progress watchdog configuration.
///
/// The watchdog bounds a run by total ops executed machine-wide; when the
/// budget expires the run ends in [`SimError::Stalled`] carrying per-node
/// snapshots and the last events of the trace ring, instead of spinning
/// forever. The default is unbounded, preserving the exact behaviour of
/// unsupervised runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Watchdog {
    /// Maximum ops executed across all nodes before the run is declared
    /// stalled. `None` disables the watchdog.
    pub max_ops: Option<u64>,
    /// Maximum host wall-clock time before the run is declared timed out
    /// ([`SimError::Timeout`]). `None` disables the wall-clock limit.
    /// Checked amortized (every few thousand scheduling decisions), so
    /// actual overshoot is bounded by one scheduling quantum.
    pub wall_limit: Option<std::time::Duration>,
    /// How many trailing trace-ring events to attach to a stall report.
    pub trace_tail: usize,
}

impl Default for Watchdog {
    fn default() -> Watchdog {
        Watchdog {
            max_ops: None,
            wall_limit: None,
            trace_tail: 32,
        }
    }
}

impl Watchdog {
    /// A watchdog with the given op budget and the default trace tail.
    pub fn with_budget(max_ops: u64) -> Watchdog {
        Watchdog {
            max_ops: Some(max_ops),
            ..Watchdog::default()
        }
    }

    /// Adds a wall-clock budget to this watchdog.
    pub fn with_wall_limit(self, limit: std::time::Duration) -> Watchdog {
        Watchdog {
            wall_limit: Some(limit),
            ..self
        }
    }

    /// A budget proportional to the configured machine and a per-node op
    /// estimate: `nodes × per_node × slack`. Used by supervised matrices
    /// to bound every cell without hand-tuning each workload.
    pub fn scaled_budget(cfg: &MachineConfig, per_node_ops: u64, slack: u64) -> Watchdog {
        Watchdog::with_budget(u64::from(cfg.nodes) * per_node_ops * slack)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_blocked_barrier_and_lock() {
        let e = SimError::Deadlock {
            nodes: vec![
                NodeSnapshot {
                    node: 0,
                    at: Time::from_ns(100),
                    ops: 10,
                    state: NodeState::AtBarrier {
                        id: 3,
                        arrived: 1,
                        expected: 2,
                    },
                },
                NodeSnapshot {
                    node: 1,
                    at: Time::from_ns(90),
                    ops: 8,
                    state: NodeState::WaitingLock {
                        id: 7,
                        holder: Some(0),
                        queue_len: 1,
                    },
                },
            ],
        };
        let msg = format!("{e}");
        assert!(msg.contains("barrier 3"), "{msg}");
        assert!(msg.contains("1/2 arrived"), "{msg}");
        assert!(msg.contains("lock 7"), "{msg}");
        assert!(msg.contains("held by node 0"), "{msg}");
    }

    #[test]
    fn kinds_are_stable_and_distinct() {
        let kinds = [
            SimError::Deadlock { nodes: vec![] }.kind(),
            SimError::UnmappedAddress {
                node: 0,
                addr: VAddr(0),
            }
            .kind(),
            SimError::OutOfPhysicalMemory {
                node: 0,
                home: 0,
                vpn: 0,
            }
            .kind(),
            SimError::UnheldLock {
                node: 0,
                lock: 0,
                holder: None,
            }
            .kind(),
            SimError::Stalled {
                ops_executed: 0,
                nodes: vec![],
                recent: vec![],
            }
            .kind(),
            SimError::Timeout {
                elapsed: std::time::Duration::ZERO,
                budget: std::time::Duration::ZERO,
                nodes: vec![],
                recent: vec![],
            }
            .kind(),
            SimError::Panic(String::new()).kind(),
        ];
        let mut sorted = kinds.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), kinds.len());
    }

    #[test]
    fn watchdog_default_is_unbounded() {
        assert_eq!(Watchdog::default().max_ops, None);
        assert_eq!(Watchdog::with_budget(100).max_ops, Some(100));
    }
}
