//! FlashLite timing parameters.
//!
//! FlashLite's timing came from the Verilog RTL of MAGIC — its authors
//! *were* the hardware designers — so even "untuned" it sat within ~13 % of
//! the machine (Table 3). We model that history with three parameter sets:
//!
//! - [`FlashLiteParams::hardware`]: the values the gold-standard machine
//!   uses. By construction these *are* the truth in this workspace.
//! - [`FlashLiteParams::untuned`]: design-time estimates — close, but fast
//!   on the local path and slow on dirty-remote interventions, matching the
//!   error signs in the paper's Table 3.
//! - Tuned values are *computed*, not hardcoded: `flashsim-core`'s
//!   calibration loop adjusts an untuned set until snbench latencies match
//!   the gold standard, exactly the paper's §3.1.2 procedure.
//!
//! All protocol-processor handler costs are in 75 MHz MAGIC cycles; bus and
//! memory figures are absolute times.

use flashsim_engine::{Clock, TimeDelta};
use flashsim_net::NetworkParams;

/// Timing parameters for the FlashLite memory-system model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlashLiteParams {
    /// MAGIC system clock (75 MHz on FLASH).
    pub magic_clock: Clock,
    /// Processor-side miss detection + pin crossing before MAGIC sees the
    /// request.
    pub proc_miss_detect: TimeDelta,
    /// PP handler: processor-interface request decode (MAGIC cycles).
    pub pp_pi_request: u64,
    /// PP handler: directory lookup + local reply scheduling (cycles).
    pub pp_dir_local: u64,
    /// PP handler: directory lookup for a network request (cycles).
    pub pp_dir_remote: u64,
    /// PP handler: network-interface outbound send (cycles).
    pub pp_ni_out: u64,
    /// PP handler: network-interface inbound reply processing (cycles).
    pub pp_ni_reply: u64,
    /// PP handler: intervention/invalidation processing at a third node
    /// (cycles).
    pub pp_intervention: u64,
    /// PP handler: extra work on the dirty path at the home (cycles).
    pub pp_dirty_extra: u64,
    /// PP handler: writeback processing (cycles).
    pub pp_writeback: u64,
    /// Time for the owning processor to yank a dirty line out of its
    /// backside secondary cache (the R10000 routes interventions through
    /// the processor, making this large).
    pub proc_intervention: TimeDelta,
    /// DRAM access time (paper: 140 ns to the first double-word).
    pub mem_access: TimeDelta,
    /// Memory bank occupancy per access.
    pub mem_busy: TimeDelta,
    /// Number of interleaved banks per node.
    pub mem_banks: usize,
    /// Reply transfer back over the processor bus + critical-word restart.
    pub reply_fill: TimeDelta,
    /// Network timing.
    pub net: NetworkParams,
    /// Coherence line size in bytes (secondary cache line, 128 on FLASH).
    pub line_bytes: u64,
    /// Request/control message payload bytes.
    pub header_bytes: u64,
    /// Directory pointer-pool capacity per node.
    pub dir_pool: u32,
    /// MAGIC bounded-inbound-queue threshold: a remote request arriving
    /// while the home protocol processor's queued work exceeds this bound
    /// is NACKed back to the requester instead of being enqueued, as on
    /// real FLASH (whose MAGIC had finite inbound queues and a
    /// NACK-and-retry protocol to stay deadlock-free).
    pub nack_threshold: TimeDelta,
    /// Base delay of the requester's exponential retry backoff
    /// (doubles per consecutive NACK).
    pub nack_retry_base: TimeDelta,
    /// Retries after which the requester stops backing off and the
    /// request is enqueued regardless (forward-progress guarantee).
    pub nack_max_retries: u32,
}

impl FlashLiteParams {
    /// The gold-standard values (defined as the hardware's truth).
    pub fn hardware() -> FlashLiteParams {
        FlashLiteParams {
            magic_clock: Clock::from_mhz(75),
            proc_miss_detect: TimeDelta::from_ns(100),
            pp_pi_request: 8,
            pp_dir_local: 10,
            pp_dir_remote: 16,
            pp_ni_out: 10,
            pp_ni_reply: 16,
            pp_intervention: 16,
            pp_dirty_extra: 20,
            pp_writeback: 10,
            proc_intervention: TimeDelta::from_ns(750),
            mem_access: TimeDelta::from_ns(140),
            mem_busy: TimeDelta::from_ns(120),
            mem_banks: 4,
            reply_fill: TimeDelta::from_ns(110),
            net: NetworkParams::flash(),
            line_bytes: 128,
            header_bytes: 16,
            dir_pool: 1 << 16,
            nack_threshold: TimeDelta::from_us(4),
            nack_retry_base: TimeDelta::from_ns(200),
            nack_max_retries: 8,
        }
    }

    /// Design-time estimates used before any hardware existed: the local
    /// path is optimistic (fast) and the processor-intervention path
    /// pessimistic (slow), reproducing the error signs of Table 3's
    /// untuned column.
    pub fn untuned() -> FlashLiteParams {
        FlashLiteParams {
            proc_miss_detect: TimeDelta::from_ns(60),
            reply_fill: TimeDelta::from_ns(80),
            mem_access: TimeDelta::from_ns(120),
            proc_intervention: TimeDelta::from_ns(1050),
            pp_dirty_extra: 14,
            ..FlashLiteParams::hardware()
        }
    }

    /// Duration of `cycles` MAGIC cycles.
    pub fn pp(&self, cycles: u64) -> TimeDelta {
        self.magic_clock.cycles(cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hardware_magic_runs_at_75mhz() {
        let p = FlashLiteParams::hardware();
        assert_eq!(p.magic_clock.mhz(), 75);
        assert_eq!(p.pp(10).as_ns(), 133);
    }

    #[test]
    fn untuned_differs_in_documented_directions() {
        let hw = FlashLiteParams::hardware();
        let un = FlashLiteParams::untuned();
        assert!(
            un.proc_miss_detect < hw.proc_miss_detect,
            "untuned local path is fast"
        );
        assert!(un.reply_fill < hw.reply_fill);
        assert!(
            un.proc_intervention > hw.proc_intervention,
            "untuned dirty path is slow"
        );
        assert_eq!(un.magic_clock, hw.magic_clock);
        assert_eq!(un.line_bytes, hw.line_bytes);
    }

    #[test]
    fn mem_access_matches_table1() {
        assert_eq!(FlashLiteParams::hardware().mem_access.as_ns(), 140);
    }
}
