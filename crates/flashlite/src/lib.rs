//! `flashsim-flashlite` — the detailed FLASH memory-system simulator.
//!
//! FlashLite is the paper's high-fidelity model: "a multi-threaded
//! simulator of the memory bus, MAGIC node controller, network, memory and
//! I/O subsystems", with a cycle-accurate emulation of the protocol
//! processor and latencies extracted from the Verilog RTL. This crate
//! reproduces it at transaction level:
//!
//! - every node has a MAGIC whose **protocol processor is an occupancy
//!   resource** — each handler (request decode, directory lookup, network
//!   send/receive, intervention, writeback) occupies it for its cycle
//!   count, so a hot home node queues requests (the Figure-7 effect the
//!   generic NUMA model misses),
//! - interleaved **memory banks** are an occupancy pool (140 ns to the
//!   first double-word, Table 1),
//! - the **hypercube network** from `flashsim-net` charges per-link
//!   occupancy (router/network contention),
//! - the directory protocol is the real dynamic-pointer-allocation state
//!   machine from `flashsim-proto` — the same protocol the gold standard
//!   runs, as in the paper.
//!
//! # Examples
//!
//! ```
//! use flashsim_flashlite::{FlashLite, FlashLiteParams};
//! use flashsim_mem::{AccessKind, LineAddr, MemRequest, MemorySystem, ProtocolCase};
//! use flashsim_engine::Time;
//!
//! let mut fl = FlashLite::new(4, 1 << 24, FlashLiteParams::hardware()).unwrap();
//! let out = fl.access(MemRequest {
//!     node: 0,
//!     line: LineAddr(0x100),         // homed at node 0
//!     kind: AccessKind::ReadShared,
//!     now: Time::ZERO,
//! });
//! assert_eq!(out.case, ProtocolCase::LocalClean);
//! assert!(out.done_at.as_ns() > 400);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod params;

pub use params::FlashLiteParams;

use flashsim_engine::ckpt::{CkptError, CkptReader, CkptWriter};
use flashsim_engine::{
    FaultInjector, MessageFate, MetricId, MetricKind, Resource, ResourcePool, SpanClass,
    SpanTracer, StatSet, Telemetry, Time, TimeDelta, TraceCategory, Tracer,
};
use flashsim_mem::system::{
    AccessKind, CoherenceActions, LatencyBreakdown, MemOutcome, MemRequest, MemorySystem, NodeId,
    ProtocolCase,
};
use flashsim_mem::LineAddr;
use flashsim_net::{Network, Topology, TopologyError};
use flashsim_proto::{classify_read, DataSource, Directory};
use std::collections::BTreeMap;

/// The detailed FLASH memory-system model.
#[derive(Debug)]
pub struct FlashLite {
    params: FlashLiteParams,
    node_mem_bytes: u64,
    nodes: u32,
    dirs: Vec<Directory>,
    net: Network,
    pp: Vec<Resource>,
    pi: Vec<Resource>,
    mem: Vec<ResourcePool>,
    case_counts: BTreeMap<ProtocolCase, u64>,
    case_latency_ns: BTreeMap<ProtocolCase, f64>,
    tracer: Tracer,
    faults: FaultInjector,
    telemetry: Telemetry,
    spans: SpanTracer,
    tel_queue: MetricId,
    tel_pool: MetricId,
    /// Per-home-node variants of `magic.queue_ps` / `proto.dir_pool_used`
    /// (bounded cardinality: registered up front, one id per node, and
    /// only for machines small enough to keep the label set bounded).
    tel_queue_node: Vec<MetricId>,
    tel_pool_node: Vec<MetricId>,
    tel_reclaims: MetricId,
    tel_nacks: MetricId,
    tel_retries: MetricId,
    tel_bank_wait: MetricId,
    nacks: u64,
    retries: u64,
    nack_backoff: TimeDelta,
    // Per-transaction latency decomposition, accumulated by the acquire/
    // send helpers along the requester's critical path and reset at the
    // start of each demand transaction.
    txn_occ: TimeDelta,
    txn_net: TimeDelta,
}

impl FlashLite {
    /// Creates a FlashLite over `nodes` nodes, each owning
    /// `node_mem_bytes` of physical memory.
    ///
    /// # Errors
    ///
    /// Returns an error if `nodes` is not a power of two (hypercube).
    pub fn new(
        nodes: u32,
        node_mem_bytes: u64,
        params: FlashLiteParams,
    ) -> Result<FlashLite, TopologyError> {
        let topo = Topology::hypercube(nodes)?;
        Ok(FlashLite {
            params,
            node_mem_bytes,
            nodes,
            dirs: (0..nodes)
                .map(|_| Directory::new(params.dir_pool))
                .collect(),
            net: Network::new(topo, params.net),
            pp: (0..nodes).map(|_| Resource::new("magic-pp")).collect(),
            pi: (0..nodes).map(|_| Resource::new("magic-pi")).collect(),
            mem: (0..nodes)
                .map(|_| ResourcePool::new("mem-banks", params.mem_banks))
                .collect(),
            case_counts: BTreeMap::new(),
            case_latency_ns: BTreeMap::new(),
            tracer: Tracer::disabled(),
            faults: FaultInjector::inert(),
            telemetry: Telemetry::disabled(),
            spans: SpanTracer::disabled(),
            tel_queue: MetricId::NONE,
            tel_pool: MetricId::NONE,
            tel_queue_node: Vec::new(),
            tel_pool_node: Vec::new(),
            tel_reclaims: MetricId::NONE,
            tel_nacks: MetricId::NONE,
            tel_retries: MetricId::NONE,
            tel_bank_wait: MetricId::NONE,
            nacks: 0,
            retries: 0,
            nack_backoff: TimeDelta::ZERO,
            txn_occ: TimeDelta::ZERO,
            txn_net: TimeDelta::ZERO,
        })
    }

    /// Current parameters.
    pub fn params(&self) -> &FlashLiteParams {
        &self.params
    }

    /// Replaces the timing parameters (used by the calibration loop
    /// between runs). Directory state is preserved; the idle network is
    /// rebuilt with the new link timing.
    pub fn set_params(&mut self, params: FlashLiteParams) {
        self.params = params;
        self.net = Network::new(self.net.topology(), params.net);
        self.net.attach_tracer(self.tracer.clone());
        self.net.attach_telemetry(self.telemetry.clone());
        self.net.attach_spans(self.spans.clone());
    }

    /// Charges a protocol handler: the full cycle count contributes to the
    /// transaction's LATENCY, but only half of it OCCUPIES the protocol
    /// processor — the other half of the path (SRAM lookups, queue and
    /// bus crossings) overlaps with the next handler's dispatch. The
    /// handler cycle values are calibrated against end-to-end snbench
    /// latencies, which fold in those non-PP components; charging them
    /// all as occupancy would roughly double MAGIC's real service demand.
    fn pp_acquire(&mut self, node: NodeId, cycles: u64, kind: &'static str, t: Time) -> Time {
        let occupancy = self.params.pp(cycles.div_ceil(2));
        let grant = self.pp[node as usize].acquire(t, occupancy);
        let done = grant.start + self.params.pp(cycles);
        self.txn_occ += done - t;
        // The span charge mirrors the accumulator charge exactly (queue
        // wait + handler run), so per-class span sums reconcile with the
        // transaction's LatencyBreakdown to the picosecond.
        self.spans
            .leg(kind, node, t, done, Some(SpanClass::Occupancy), done - t);
        done
    }

    /// The processor-interface handler runs on MAGIC's PI stage, which is
    /// separate hardware from the protocol processor: local requests do
    /// not occupy the PP for their inbound decode, so a burst of
    /// lockup-free misses queues far less than if one engine did
    /// everything.
    fn pi_acquire(&mut self, node: NodeId, t: Time) -> Time {
        let cycles = self.params.pp_pi_request;
        let grant = self.pi[node as usize].acquire(t, self.params.pp(cycles.div_ceil(2)));
        let done = grant.start + self.params.pp(cycles);
        self.txn_occ += done - t;
        self.spans.leg(
            "pi_request",
            node,
            t,
            done,
            Some(SpanClass::Occupancy),
            done - t,
        );
        done
    }

    fn mem_acquire(&mut self, node: NodeId, t: Time) -> Time {
        let grant = self.mem[node as usize].acquire(t, self.params.mem_busy);
        self.telemetry
            .count(self.tel_bank_wait, grant.start, grant.wait.as_ps());
        let done = grant.start + self.params.mem_access;
        // Bank wait + access: the part of the data path the breakdown's
        // `memory` residual covers (zero-charged off the critical path).
        self.spans
            .leg("mem_bank", node, t, done, Some(SpanClass::Memory), done - t);
        done
    }

    fn send(&mut self, from: NodeId, to: NodeId, bytes: u64, kind: &'static str, t: Time) -> Time {
        let mut depart = t;
        // Fault injection: a dropped message is retransmitted after the
        // plan's timeout; a delayed one leaves late. Bounded so even a
        // pathological fate stream cannot loop forever.
        for _ in 0..16 {
            match self.faults.message_fate(from, to) {
                MessageFate::Deliver => break,
                MessageFate::Delay(d) => {
                    depart += d;
                    break;
                }
                MessageFate::Drop => depart += self.faults.plan().drop_timeout,
            }
        }
        // The network leg carries the whole transit charge; the router
        // emits zero-charge per-hop children nested inside it.
        self.spans.begin(kind, from, t);
        let arrival = self.net.send(from, to, bytes, depart);
        self.spans
            .end(arrival, Some(SpanClass::Network), arrival - t);
        // Fault-injected delays/retransmits count as transit: they are
        // time the message spends "in" the network from the charger's
        // point of view.
        self.txn_net += arrival - t;
        arrival
    }

    /// The bounded-inbound-queue NACK path: a remote request arriving at a
    /// saturated home MAGIC is bounced back and retried with exponential
    /// backoff, as on real FLASH. Returns when the request is finally
    /// accepted at the home. Each bounce costs a NACK header back to the
    /// requester, the backoff wait, and a fresh outbound send (the bounce
    /// itself is handled in MAGIC's inbound hardware, not the PP).
    fn nack_retry(&mut self, requester: NodeId, home: NodeId, mut t: Time) -> Time {
        let p = self.params;
        if requester == home || p.nack_max_retries == 0 {
            return t;
        }
        let mut retries: u32 = 0;
        while self.pp[home as usize].wait_at(t) > p.nack_threshold && retries < p.nack_max_retries {
            self.nacks += 1;
            self.telemetry.count(self.tel_nacks, t, 1);
            retries += 1;
            let mut rt = self.send(home, requester, p.header_bytes, "nack", t);
            let backoff = p.nack_retry_base * (1u64 << (retries - 1).min(6));
            self.nack_backoff += backoff;
            // Backoff is time spent waiting out home-MAGIC saturation:
            // occupancy, not transit.
            self.txn_occ += backoff;
            self.spans.leg(
                "backoff",
                requester,
                rt,
                rt + backoff,
                Some(SpanClass::Occupancy),
                backoff,
            );
            rt += backoff;
            rt = self.pp_acquire(requester, p.pp_ni_out, "ni_out", rt);
            t = self.send(requester, home, p.header_bytes, "net", rt);
        }
        self.retries += u64::from(retries);
        if retries > 0 {
            self.telemetry
                .count(self.tel_retries, t, u64::from(retries));
        }
        t
    }

    /// Time for the home to invalidate `sharers` and collect all acks,
    /// starting at `t`. Also charges the relevant occupancies.
    fn invalidate_round(&mut self, home: NodeId, sharers: &[NodeId], t: Time) -> Time {
        let mut done = t;
        for &v in sharers {
            let mut tv = self.pp_acquire(home, self.params.pp_ni_out, "ni_out", t);
            if v != home {
                tv = self.send(home, v, self.params.header_bytes, "net", tv);
            }
            tv = self.pp_acquire(v, self.params.pp_intervention, "pp_intervention", tv);
            if v != home {
                tv = self.send(v, home, self.params.header_bytes, "net", tv);
            }
            done = done.max(tv);
        }
        if !sharers.is_empty() {
            // Ack collection handler at the home.
            done = self.pp_acquire(home, self.params.pp_dir_local, "dir_lookup", done);
        }
        done
    }

    fn record(
        &mut self,
        case: ProtocolCase,
        requester: NodeId,
        home: NodeId,
        done_at: Time,
        latency: TimeDelta,
    ) {
        *self.case_counts.entry(case).or_insert(0) += 1;
        *self.case_latency_ns.entry(case).or_insert(0.0) += latency.as_ns_f64();
        if self.tracer.enabled(TraceCategory::Proto) {
            self.tracer.emit(
                done_at,
                TraceCategory::Proto,
                case.key(),
                requester,
                latency.as_ps(),
                home as u64,
            );
        }
    }

    /// Resets the per-transaction decomposition accumulators.
    fn txn_begin(&mut self) {
        self.txn_occ = TimeDelta::ZERO;
        self.txn_net = TimeDelta::ZERO;
    }

    /// Folds the accumulated critical-path components into a
    /// [`LatencyBreakdown`] for a transaction of the given total latency.
    /// Components are clamped so they never exceed the total (overlapped
    /// protocol work can otherwise over-count); whatever is left —
    /// memory-bank time, handler remainders, un-itemized overlap — lands
    /// in `memory`.
    fn txn_breakdown(&self, total: TimeDelta) -> LatencyBreakdown {
        let occupancy = self.txn_occ.min(total);
        let network = self.txn_net.min(total.saturating_sub(occupancy));
        LatencyBreakdown {
            occupancy,
            network,
            memory: total.saturating_sub(occupancy + network),
        }
    }

    /// Mean demand latency observed for `case`, if any occurred.
    pub fn mean_latency_ns(&self, case: ProtocolCase) -> Option<f64> {
        let n = *self.case_counts.get(&case)? as f64;
        Some(self.case_latency_ns.get(&case).copied().unwrap_or(0.0) / n)
    }

    fn demand_read(&mut self, req: MemRequest, exclusive_intent: bool) -> MemOutcome {
        let home = self.home_of(req.line);
        let requester = req.node;
        let p = self.params;
        self.txn_begin();

        // Processor detects the miss and crosses the pins.
        let mut t = req.now + p.proc_miss_detect;
        self.spans.leg(
            "miss_detect",
            requester,
            req.now,
            t,
            Some(SpanClass::Memory),
            p.proc_miss_detect,
        );
        // Requester MAGIC: processor-interface handler (PI stage).
        t = self.pi_acquire(requester, t);

        // Request travels to the home; a saturated home MAGIC NACKs it
        // back for retry-with-backoff before accepting it.
        if requester != home {
            t = self.pp_acquire(requester, p.pp_ni_out, "ni_out", t);
            t = self.send(requester, home, p.header_bytes, "net", t);
            t = self.nack_retry(requester, home, t);
        }

        // Home MAGIC: directory handler.
        let dir_cycles = if requester == home {
            p.pp_dir_local
        } else {
            p.pp_dir_remote
        };
        // MAGIC inbound-queue occupancy at the home, sampled as each
        // demand reaches the directory handler: the queued work (in ps)
        // ahead of this request. This is the series the paper's hotspot
        // study turns on — the latency-only NUMA model has no such queue.
        let queued = self.pp[home as usize].wait_at(t).as_ps();
        self.telemetry.occupy(self.tel_queue, t, queued);
        if let Some(&id) = self.tel_queue_node.get(home as usize) {
            self.telemetry.occupy(id, t, queued);
        }
        t = self.pp_acquire(home, dir_cycles, "dir_lookup", t);

        let reclaims_before = self.dirs[home as usize].reclaims();
        let resp = if exclusive_intent {
            self.dirs[home as usize].read_exclusive(req.line, requester)
        } else {
            self.dirs[home as usize].read(req.line, requester)
        };
        let dir_occ = self.dirs[home as usize].occupancy_sample();
        self.telemetry
            .gauge(self.tel_pool, t, u64::from(dir_occ.used));
        if let Some(&id) = self.tel_pool_node.get(home as usize) {
            self.telemetry.gauge(id, t, u64::from(dir_occ.used));
        }
        self.telemetry
            .count(self.tel_reclaims, t, dir_occ.reclaims - reclaims_before);
        let case = classify_read(requester, home, resp.source);

        // Invalidations (read-exclusive on a shared line, or pointer
        // reclamation) run concurrently with the data fetch; the grant
        // waits for both. The data-supplying owner is not in this round —
        // its intervention is the data path itself.
        let sharers: Vec<NodeId> = resp
            .invalidate
            .iter()
            .copied()
            .filter(|v| Some(*v) != resp.source.owner())
            .collect();
        let ack_done = if sharers.is_empty() {
            t
        } else {
            // The round's legs run in parallel with the data path; its
            // per-leg charges must not count toward the requester's
            // critical path (only its *exposed* tail does, below).
            let saved = (self.txn_occ, self.txn_net);
            self.spans.begin_offpath("inval_round", home, t);
            let done = self.invalidate_round(home, &sharers, t);
            self.spans.end(done, None, TimeDelta::ZERO);
            (self.txn_occ, self.txn_net) = saved;
            done
        };

        // Data path.
        let mut data_t = match resp.source {
            DataSource::Memory => {
                let ready = self.mem_acquire(home, t);
                if requester != home {
                    let out = self.pp_acquire(home, p.pp_ni_out, "ni_out", ready);
                    let arrived =
                        self.send(home, requester, p.line_bytes + p.header_bytes, "net", out);
                    self.pp_acquire(requester, p.pp_ni_reply, "ni_reply", arrived)
                } else {
                    ready
                }
            }
            DataSource::Owner(owner) => {
                let mut dt = self.pp_acquire(home, p.pp_dirty_extra, "dirty_extra", t);
                if owner != home {
                    dt = self.pp_acquire(home, p.pp_ni_out, "ni_out", dt);
                    dt = self.send(home, owner, p.header_bytes, "net", dt);
                }
                // The intervention handler runs at the owner's MAGIC even
                // when the owner is the home itself (PI intervention).
                dt = self.pp_acquire(owner, p.pp_intervention, "pp_intervention", dt);
                // The owning processor supplies the line from its
                // secondary cache (through the processor on an R10000).
                self.spans.leg(
                    "proc_intervention",
                    owner,
                    dt,
                    dt + p.proc_intervention,
                    Some(SpanClass::Memory),
                    p.proc_intervention,
                );
                dt += p.proc_intervention;
                if owner != requester {
                    dt = self.pp_acquire(owner, p.pp_ni_out, "ni_out", dt);
                    dt = self.send(owner, requester, p.line_bytes + p.header_bytes, "net", dt);
                    dt = self.pp_acquire(requester, p.pp_ni_reply, "ni_reply", dt);
                }
                // Sharing writeback to the home (off the critical path,
                // so excluded from the requester's decomposition).
                if owner != home {
                    let saved = (self.txn_occ, self.txn_net);
                    self.spans.begin_offpath("sharing_wb", owner, dt);
                    let wb = self.send(owner, home, p.line_bytes + p.header_bytes, "net", dt);
                    let wb = self.pp_acquire(home, p.pp_writeback, "pp_writeback", wb);
                    let wb_done = self.mem_acquire(home, wb);
                    self.spans.end(wb_done, None, TimeDelta::ZERO);
                    (self.txn_occ, self.txn_net) = saved;
                }
                dt
            }
        };

        // Invalidation time the data path did not hide is exposed
        // protocol work at the home: occupancy.
        if ack_done > data_t {
            self.txn_occ += ack_done - data_t;
            self.spans.leg(
                "exposed_inval",
                home,
                data_t,
                ack_done,
                Some(SpanClass::Occupancy),
                ack_done - data_t,
            );
        }
        data_t = data_t.max(ack_done);
        // Reply crosses the bus and the processor restarts.
        let done_at = data_t + p.reply_fill;
        self.spans.leg(
            "reply_fill",
            requester,
            data_t,
            done_at,
            Some(SpanClass::Memory),
            p.reply_fill,
        );
        self.record(case, requester, home, done_at, done_at - req.now);

        MemOutcome {
            done_at,
            case,
            exclusive: resp.exclusive,
            actions: CoherenceActions {
                invalidate: resp.invalidate,
                downgrade: resp.downgrade,
            },
            breakdown: self.txn_breakdown(done_at - req.now),
        }
    }

    fn upgrade(&mut self, req: MemRequest) -> MemOutcome {
        let home = self.home_of(req.line);
        let requester = req.node;
        let p = self.params;
        self.txn_begin();

        let mut t = req.now + p.proc_miss_detect;
        self.spans.leg(
            "miss_detect",
            requester,
            req.now,
            t,
            Some(SpanClass::Memory),
            p.proc_miss_detect,
        );
        t = self.pi_acquire(requester, t);
        if requester != home {
            t = self.pp_acquire(requester, p.pp_ni_out, "ni_out", t);
            t = self.send(requester, home, p.header_bytes, "net", t);
            t = self.nack_retry(requester, home, t);
        }
        let dir_cycles = if requester == home {
            p.pp_dir_local
        } else {
            p.pp_dir_remote
        };
        let queued = self.pp[home as usize].wait_at(t).as_ps();
        self.telemetry.occupy(self.tel_queue, t, queued);
        if let Some(&id) = self.tel_queue_node.get(home as usize) {
            self.telemetry.occupy(id, t, queued);
        }
        t = self.pp_acquire(home, dir_cycles, "dir_lookup", t);

        let reclaims_before = self.dirs[home as usize].reclaims();
        let resp = self.dirs[home as usize].upgrade(req.line, requester);
        let dir_occ = self.dirs[home as usize].occupancy_sample();
        self.telemetry
            .gauge(self.tel_pool, t, u64::from(dir_occ.used));
        if let Some(&id) = self.tel_pool_node.get(home as usize) {
            self.telemetry.gauge(id, t, u64::from(dir_occ.used));
        }
        self.telemetry
            .count(self.tel_reclaims, t, dir_occ.reclaims - reclaims_before);
        // For an upgrade, the invalidation round IS the critical path;
        // its whole duration is exposed protocol work at the home, so it
        // is charged wholesale as occupancy (per-leg charges inside the
        // round would over-count the parallel legs). The round's span
        // mirrors that: the subtree's legs are zero-charged, the round
        // itself carries the wholesale occupancy charge.
        let inv_start = t;
        let saved = (self.txn_occ, self.txn_net);
        self.spans.begin_offpath("inval_round", home, inv_start);
        let t = self.invalidate_round(home, &resp.invalidate, t);
        self.spans.end(t, Some(SpanClass::Occupancy), t - inv_start);
        (self.txn_occ, self.txn_net) = saved;
        self.txn_occ += t - inv_start;
        let mut t = t;
        if requester != home {
            t = self.pp_acquire(home, p.pp_ni_out, "ni_out", t);
            t = self.send(home, requester, p.header_bytes, "net", t);
            t = self.pp_acquire(requester, p.pp_ni_reply, "ni_reply", t);
        }
        let done_at = t + p.reply_fill;
        self.spans.leg(
            "reply_fill",
            requester,
            t,
            done_at,
            Some(SpanClass::Memory),
            p.reply_fill,
        );
        self.record(
            ProtocolCase::UpgradeOwnership,
            requester,
            home,
            done_at,
            done_at - req.now,
        );
        MemOutcome {
            done_at,
            case: ProtocolCase::UpgradeOwnership,
            exclusive: true,
            actions: CoherenceActions {
                invalidate: resp.invalidate,
                downgrade: resp.downgrade,
            },
            breakdown: self.txn_breakdown(done_at - req.now),
        }
    }

    fn writeback(&mut self, req: MemRequest) -> MemOutcome {
        let home = self.home_of(req.line);
        let p = self.params;
        // Victim writebacks drain from MAGIC's outbound/victim queues in
        // spare cycles (demand misses are prioritized), so they charge
        // the network and the memory banks but do not occupy the PI or
        // the protocol processor ahead of the next demand miss.
        let mut t = req.now + p.pp(p.pp_writeback);
        if req.node != home {
            t = self.send(req.node, home, p.line_bytes + p.header_bytes, "net", t);
        }
        let done_at = self.mem_acquire(home, t);
        self.dirs[home as usize].writeback(req.line, req.node);
        self.record(
            ProtocolCase::WritebackCase,
            req.node,
            home,
            done_at,
            done_at - req.now,
        );
        MemOutcome {
            done_at,
            case: ProtocolCase::WritebackCase,
            exclusive: false,
            actions: CoherenceActions::none(),
            // Writebacks never stall the processor, so nothing is ever
            // charged from this decomposition.
            breakdown: LatencyBreakdown::default(),
        }
    }
}

impl MemorySystem for FlashLite {
    fn access(&mut self, req: MemRequest) -> MemOutcome {
        match req.kind {
            AccessKind::ReadShared => self.demand_read(req, false),
            AccessKind::ReadExclusive => self.demand_read(req, true),
            AccessKind::Upgrade => self.upgrade(req),
            AccessKind::Writeback => self.writeback(req),
        }
    }

    fn home_of(&self, line: LineAddr) -> NodeId {
        ((line.get() / self.node_mem_bytes) as u32).min(self.nodes - 1)
    }

    fn stats(&self) -> StatSet {
        let mut s = StatSet::new();
        for (case, count) in &self.case_counts {
            s.set(format!("proto.{}.count", case.key()), *count as f64);
            if let Some(mean) = self.mean_latency_ns(*case) {
                s.set(format!("proto.{}.mean_ns", case.key()), mean);
            }
        }
        let pp_busy: f64 = self.pp.iter().map(|r| r.busy_total().as_ns_f64()).sum();
        let pp_wait: f64 = self.pp.iter().map(|r| r.wait_total().as_ns_f64()).sum();
        s.set("magic.pp_busy_ns", pp_busy);
        s.set("magic.pp_wait_ns", pp_wait);
        // Retry-storm visibility: NACK bounces, retried sends, and the
        // total backoff charged to requesters.
        s.set("magic.nacks", self.nacks as f64);
        s.set("magic.retries", self.retries as f64);
        s.set("magic.nack_backoff_ns", self.nack_backoff.as_ns_f64());
        let mem_wait: f64 = self.mem.iter().map(|m| m.wait_total().as_ns_f64()).sum();
        s.set("mem.bank_wait_ns", mem_wait);
        // Directory pointer-storage pressure.
        let reclaims: u64 = self.dirs.iter().map(|d| d.reclaims()).sum();
        let pool_used: u32 = self.dirs.iter().map(|d| d.pool_used()).sum();
        s.set("proto.dir_reclaims", reclaims as f64);
        s.set("proto.dir_pool_used", f64::from(pool_used));
        s.absorb_flat(&self.net.stats());
        s
    }

    fn attach_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer.clone();
        self.net.attach_tracer(tracer);
    }

    fn attach_faults(&mut self, faults: FaultInjector) {
        self.faults = faults;
    }

    fn attach_telemetry(&mut self, telemetry: Telemetry) {
        // `magic.queue_ps` is the paper's omitted-queueing signature:
        // FlashLite registers it, the NUMA model does not.
        self.tel_queue = telemetry.register("magic.queue_ps", MetricKind::Occupancy);
        self.tel_pool = telemetry.register("proto.dir_pool_used", MetricKind::Gauge);
        self.tel_reclaims = telemetry.register("proto.dir_reclaims", MetricKind::Counter);
        self.tel_nacks = telemetry.register("magic.nacks", MetricKind::Counter);
        self.tel_retries = telemetry.register("magic.retries", MetricKind::Counter);
        self.tel_bank_wait = telemetry.register("mem.bank_wait_ps", MetricKind::Counter);
        // Per-home-node variants let hotspot studies see WHICH MAGIC is
        // saturated, not just that one is. The label cardinality is
        // bounded by the node count; machines past 64 nodes keep only
        // the aggregates.
        self.tel_queue_node.clear();
        self.tel_pool_node.clear();
        if self.nodes <= 64 {
            for n in 0..self.nodes {
                self.tel_queue_node.push(telemetry.register_node(
                    "magic.queue_ps",
                    n,
                    MetricKind::Occupancy,
                ));
                self.tel_pool_node.push(telemetry.register_node(
                    "proto.dir_pool_used",
                    n,
                    MetricKind::Gauge,
                ));
            }
        }
        self.net.attach_telemetry(telemetry.clone());
        self.telemetry = telemetry;
    }

    fn attach_spans(&mut self, spans: SpanTracer) {
        self.spans = spans.clone();
        self.net.attach_spans(spans);
    }

    fn model_name(&self) -> &'static str {
        "flashlite"
    }

    fn save_ckpt(&self, w: &mut CkptWriter) {
        w.u64s("shape", &[u64::from(self.nodes), self.node_mem_bytes]);
        w.u64("nacks", self.nacks);
        w.u64("retries", self.retries);
        w.delta("nack_backoff", self.nack_backoff);
        // The per-transaction decomposition scratch (txn_occ/txn_net) is
        // reset at the start of every demand transaction, and checkpoints
        // only happen between transactions — nothing to save.
        w.u64("cases", self.case_counts.len() as u64);
        for (case, count) in &self.case_counts {
            w.str("case", case.key());
            w.u64("count", *count);
            w.f64(
                "latency_ns",
                self.case_latency_ns.get(case).copied().unwrap_or(0.0),
            );
        }
        for dir in &self.dirs {
            dir.save_ckpt(w);
        }
        self.net.save_ckpt(w);
        for r in &self.pp {
            r.save_ckpt(w);
        }
        for r in &self.pi {
            r.save_ckpt(w);
        }
        for m in &self.mem {
            m.save_ckpt(w);
        }
    }

    fn load_ckpt(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        let shape = r.u64s("shape")?;
        if shape != [u64::from(self.nodes), self.node_mem_bytes] {
            return Err(CkptError::Parse {
                key: "shape".to_string(),
                value: format!("{shape:?}"),
            });
        }
        self.nacks = r.u64("nacks")?;
        self.retries = r.u64("retries")?;
        self.nack_backoff = r.delta("nack_backoff")?;
        self.case_counts.clear();
        self.case_latency_ns.clear();
        let cases = r.u64("cases")?;
        for _ in 0..cases {
            let key = r.str_field("case")?;
            let case = ProtocolCase::from_key(&key).ok_or_else(|| CkptError::Parse {
                key: "case".to_string(),
                value: key.clone(),
            })?;
            self.case_counts.insert(case, r.u64("count")?);
            self.case_latency_ns.insert(case, r.f64("latency_ns")?);
        }
        for dir in self.dirs.iter_mut() {
            dir.load_ckpt(r)?;
        }
        self.net.load_ckpt(r)?;
        for res in self.pp.iter_mut() {
            res.load_ckpt(r)?;
        }
        for res in self.pi.iter_mut() {
            res.load_ckpt(r)?;
        }
        for m in self.mem.iter_mut() {
            m.load_ckpt(r)?;
        }
        Ok(())
    }

    fn min_shared_latency(&self) -> TimeDelta {
        // Every demand path charges miss detection, the requester MAGIC's
        // PI handler, and at least the local directory handler before any
        // reply can exist; occupancy waits only lengthen it.
        let p = &self.params;
        p.proc_miss_detect + p.pp(p.pp_pi_request + p.pp_dir_local)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fl(nodes: u32) -> FlashLite {
        FlashLite::new(nodes, 1 << 24, FlashLiteParams::hardware()).unwrap()
    }

    fn read(flm: &mut FlashLite, node: u32, line: u64, at_ns: u64) -> MemOutcome {
        flm.access(MemRequest {
            node,
            line: LineAddr(line),
            kind: AccessKind::ReadShared,
            now: Time::from_ns(at_ns),
        })
    }

    #[test]
    fn local_clean_read_latency_near_table3() {
        let mut m = fl(4);
        let out = read(&mut m, 0, 0x100, 0);
        assert_eq!(out.case, ProtocolCase::LocalClean);
        let ns = out.done_at.as_ns();
        assert!((450..750).contains(&ns), "local clean read took {ns}ns");
        assert!(out.exclusive);
    }

    #[test]
    fn remote_clean_costs_more_than_local() {
        let mut m = fl(4);
        let local = read(&mut m, 0, 0x100, 0).done_at;
        let mut m2 = fl(4);
        let remote = read(&mut m2, 1, 0x100, 0); // line homed at node 0
        assert_eq!(remote.case, ProtocolCase::RemoteClean);
        assert!(remote.done_at > local + TimeDelta::from_ns(300));
    }

    #[test]
    fn dirty_cases_classify_and_cost_most() {
        // Node 2 dirties a line homed at node 0; node 1 then reads it.
        let mut m = fl(4);
        m.access(MemRequest {
            node: 2,
            line: LineAddr(0x100),
            kind: AccessKind::ReadExclusive,
            now: Time::ZERO,
        });
        let out = read(&mut m, 1, 0x100, 10_000);
        assert_eq!(out.case, ProtocolCase::RemoteDirtyRemote);
        assert_eq!(out.actions.downgrade, Some(2));
        let lat = out.done_at.as_ns() - 10_000;
        assert!(lat > 2_000, "dirty-remote read took only {lat}ns");
    }

    #[test]
    fn local_dirty_remote_case() {
        let mut m = fl(4);
        m.access(MemRequest {
            node: 3,
            line: LineAddr(0x100),
            kind: AccessKind::ReadExclusive,
            now: Time::ZERO,
        });
        let out = read(&mut m, 0, 0x100, 10_000); // home reads its own line
        assert_eq!(out.case, ProtocolCase::LocalDirtyRemote);
    }

    #[test]
    fn remote_dirty_home_case() {
        let mut m = fl(4);
        m.access(MemRequest {
            node: 0,
            line: LineAddr(0x100), // home 0 dirties its own line
            kind: AccessKind::ReadExclusive,
            now: Time::ZERO,
        });
        let out = read(&mut m, 1, 0x100, 10_000);
        assert_eq!(out.case, ProtocolCase::RemoteDirtyHome);
    }

    #[test]
    fn table3_ordering_of_case_latencies() {
        // The paper's Table 3 ordering: LC < RC < LDR < RDH < RDR.
        let lat = |setup: &mut dyn FnMut(&mut FlashLite), node: u32, line: u64| {
            let mut m = fl(4);
            setup(&mut m);
            let out = read(&mut m, node, line, 100_000);
            out.done_at.as_ns() - 100_000
        };
        let lc = lat(&mut |_| {}, 0, 0x100);
        let rc = lat(&mut |_| {}, 1, 0x100);
        let ldr = lat(
            &mut |m| {
                m.access(MemRequest {
                    node: 1,
                    line: LineAddr(0x100),
                    kind: AccessKind::ReadExclusive,
                    now: Time::ZERO,
                });
            },
            0,
            0x100,
        );
        let rdh = lat(
            &mut |m| {
                m.access(MemRequest {
                    node: 0,
                    line: LineAddr(0x100),
                    kind: AccessKind::ReadExclusive,
                    now: Time::ZERO,
                });
            },
            1,
            0x100,
        );
        let rdr = lat(
            &mut |m| {
                m.access(MemRequest {
                    node: 2,
                    line: LineAddr(0x100),
                    kind: AccessKind::ReadExclusive,
                    now: Time::ZERO,
                });
            },
            1,
            0x100,
        );
        assert!(lc < rc, "LC {lc} !< RC {rc}");
        assert!(rc < ldr, "RC {rc} !< LDR {ldr}");
        assert!(ldr < rdh, "LDR {ldr} !< RDH {rdh}");
        assert!(rdh < rdr, "RDH {rdh} !< RDR {rdr}");
    }

    #[test]
    fn hotspot_queues_at_home_pp() {
        // Many nodes hammer lines homed at node 0 simultaneously: later
        // requests must queue on node 0's protocol processor.
        let mut m = fl(8);
        let mut latencies = Vec::new();
        for node in 1..8 {
            let out = m.access(MemRequest {
                node,
                line: LineAddr(0x1000 + u64::from(node) * 128),
                kind: AccessKind::ReadShared,
                now: Time::ZERO,
            });
            latencies.push(out.done_at.as_ns());
        }
        assert!(
            latencies.last().unwrap() > &(latencies[0] + 200),
            "no queueing visible: {latencies:?}"
        );
        assert!(m.stats().get_or_zero("magic.pp_wait_ns") > 0.0);
    }

    #[test]
    fn upgrade_invalidates_other_sharers() {
        let mut m = fl(4);
        read(&mut m, 1, 0x100, 0);
        read(&mut m, 2, 0x100, 5_000); // intervention: shared {1,2}
        let out = m.access(MemRequest {
            node: 1,
            line: LineAddr(0x100),
            kind: AccessKind::Upgrade,
            now: Time::from_ns(20_000),
        });
        assert_eq!(out.case, ProtocolCase::UpgradeOwnership);
        assert!(out.exclusive);
        assert!(out.actions.invalidate.contains(&2));
    }

    #[test]
    fn writeback_is_processed_and_line_becomes_clean() {
        let mut m = fl(4);
        m.access(MemRequest {
            node: 1,
            line: LineAddr(0x100),
            kind: AccessKind::ReadExclusive,
            now: Time::ZERO,
        });
        let out = m.access(MemRequest {
            node: 1,
            line: LineAddr(0x100),
            kind: AccessKind::Writeback,
            now: Time::from_ns(10_000),
        });
        assert_eq!(out.case, ProtocolCase::WritebackCase);
        // The next reader sees a clean line again.
        let next = read(&mut m, 2, 0x100, 50_000);
        assert_eq!(next.case, ProtocolCase::RemoteClean);
    }

    #[test]
    fn home_mapping_partitions_address_space() {
        let m = fl(4);
        assert_eq!(m.home_of(LineAddr(0)), 0);
        assert_eq!(m.home_of(LineAddr(1 << 24)), 1);
        assert_eq!(m.home_of(LineAddr(3 << 24)), 3);
        // Clamped at the top.
        assert_eq!(m.home_of(LineAddr(100 << 24)), 3);
    }

    #[test]
    fn stats_expose_case_means() {
        let mut m = fl(4);
        read(&mut m, 0, 0x100, 0);
        read(&mut m, 0, 0x40000, 5_000);
        let s = m.stats();
        assert_eq!(s.get_or_zero("proto.local_clean.count"), 2.0);
        assert!(s.get_or_zero("proto.local_clean.mean_ns") > 400.0);
        assert!(m.mean_latency_ns(ProtocolCase::RemoteClean).is_none());
    }

    #[test]
    fn untuned_local_read_is_faster_than_hardware() {
        let mut hw = fl(4);
        let mut un = FlashLite::new(4, 1 << 24, FlashLiteParams::untuned()).unwrap();
        let t_hw = read(&mut hw, 0, 0x100, 0).done_at;
        let t_un = read(&mut un, 0, 0x100, 0).done_at;
        assert!(t_un < t_hw, "untuned local path must be optimistic");
    }

    #[test]
    fn ckpt_roundtrip_preserves_protocol_and_occupancy_state() {
        let mut a = fl(4);
        // Build up directory state, PP timelines, and case ledgers.
        for node in 1..4 {
            a.access(MemRequest {
                node,
                line: LineAddr(0x100),
                kind: AccessKind::ReadShared,
                now: Time::from_ns(u64::from(node) * 100),
            });
        }
        a.access(MemRequest {
            node: 2,
            line: LineAddr(0x2000_0000),
            kind: AccessKind::ReadExclusive,
            now: Time::from_ns(1_000),
        });
        let mut w = CkptWriter::new("fl-test");
        a.save_ckpt(&mut w);
        let text = w.finish();

        let mut b = fl(4);
        let mut r = CkptReader::open(&text).expect("open");
        b.load_ckpt(&mut r).expect("load");
        r.finish().expect("fully consumed");

        assert_eq!(a.stats().to_json(), b.stats().to_json());
        // Identical future transactions, including queueing decisions.
        let next = MemRequest {
            node: 3,
            line: LineAddr(0x2000_0000),
            kind: AccessKind::ReadShared,
            now: Time::from_ns(2_000),
        };
        assert_eq!(a.access(next), b.access(next));
        assert_eq!(a.stats().to_json(), b.stats().to_json());

        let mut other = fl(8);
        let mut r = CkptReader::open(&text).expect("open");
        assert!(matches!(
            other.load_ckpt(&mut r),
            Err(CkptError::Parse { .. })
        ));
    }

    #[test]
    fn single_node_machine_never_touches_network() {
        let mut m = fl(1);
        read(&mut m, 0, 0x100, 0);
        read(&mut m, 0, 0x4000, 5_000);
        assert_eq!(m.stats().get_or_zero("net.hops"), 0.0);
    }
}
