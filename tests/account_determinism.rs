//! Integration tests for the cycle-accounting loop: identically seeded
//! runs produce byte-identical accounting and attribution output on
//! every platform, every simulated cycle is attributed to exactly one
//! stall class, and the attribution differ's per-class contributions sum
//! to the total relative error.

use flashsim::attrib::{attribute, run_profiled};
use flashsim::engine::{Accounting, StallClass};
use flashsim::machine::MachineConfig;
use flashsim::platform::{MemModel, Sim, Study};
use flashsim::workloads::{Fft, FftBlocking, ProblemScale};
use flashsim_isa::Program;

fn fft(threads: usize) -> Fft {
    Fft::sized(ProblemScale::Tiny, threads, FftBlocking::Cache)
}

fn profiled(cfg: MachineConfig, prog: &dyn Program) -> Accounting {
    run_profiled(cfg, prog)
        .expect("profiled run completes")
        .accounting
        .expect("profiler was attached")
}

/// Every platform of the study, at a small node count.
fn platforms(study: &Study, nodes: u32) -> Vec<(String, MachineConfig)> {
    let mut out = vec![("hardware".to_owned(), study.hardware(nodes))];
    for sim in [Sim::SimosMipsy(150), Sim::SoloMipsy(150), Sim::SimosMxs] {
        for mem in [MemModel::FlashLite, MemModel::Numa] {
            let cfg = study.sim(sim, nodes, mem);
            out.push((cfg.label(), cfg));
        }
    }
    out
}

#[test]
fn identically_seeded_accounting_is_byte_identical_on_every_platform() {
    let study = Study::scaled();
    for (label, cfg) in platforms(&study, 2) {
        let a = profiled(cfg.clone(), &fft(2));
        let b = profiled(cfg, &fft(2));
        assert_eq!(
            a.to_json(),
            b.to_json(),
            "{label}: accounting JSON must be byte-identical"
        );
        assert_eq!(
            a.to_csv(),
            b.to_csv(),
            "{label}: CSV must be byte-identical"
        );
        assert_eq!(
            a.phases_to_csv(),
            b.phases_to_csv(),
            "{label}: phase CSV must be byte-identical"
        );
    }
}

#[test]
fn every_platform_conserves_every_cycle() {
    let study = Study::scaled();
    for (label, cfg) in platforms(&study, 2) {
        let acc = profiled(cfg, &fft(2));
        assert!(acc.conserved(), "{label}: accounting not conserved");
        for node in &acc.nodes {
            assert_eq!(
                node.classes.iter().sum::<u64>(),
                node.total_ps,
                "{label}: node {} class sums != total",
                node.node
            );
        }
        assert!(acc.total_ps() > 0, "{label}: nothing accounted");
    }
}

#[test]
fn attribution_is_deterministic_and_sums_to_total_error() {
    let study = Study::scaled();
    let hw = profiled(study.hardware(2), &fft(2));
    for (label, cfg) in platforms(&study, 2) {
        let sim = profiled(cfg, &fft(2));
        let rep = attribute(&sim, &label, &hw, "hardware");
        // The identity the differ is built on: per-class contributions
        // reproduce the total relative error.
        assert!(
            rep.residual().abs() < 1e-9,
            "{label}: residual {}",
            rep.residual()
        );
        let again = attribute(&sim, &label, &hw, "hardware");
        assert_eq!(
            rep.to_csv(),
            again.to_csv(),
            "{label}: attribution must be deterministic"
        );
    }
}

#[test]
fn numa_omits_the_occupancy_flashlite_models() {
    // The paper's central mechanism finding (§3.3): the contention-free
    // NUMA model omits directory/MAGIC occupancy. The attribution differ
    // must expose that as a negative occupancy contribution when NUMA is
    // judged against the same processor model running FlashLite.
    let study = Study::scaled();
    let sim = Sim::SimosMipsy(150);
    let fl = profiled(study.sim(sim, 2, MemModel::FlashLite), &fft(2));
    let numa = profiled(study.sim(sim, 2, MemModel::Numa), &fft(2));
    let rep = attribute(&numa, "numa", &fl, "flashlite");
    let occ = rep.classes[StallClass::DirOccupancy as usize];
    assert!(
        occ.sim_ps < occ.ref_ps,
        "NUMA must account less occupancy than FlashLite ({} vs {})",
        occ.sim_ps,
        occ.ref_ps
    );
    assert!(rep.residual().abs() < 1e-9);
}
