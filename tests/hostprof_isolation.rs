//! The host-time self-profiler's isolation contract: attaching
//! `hostprof` observes the simulator, it never participates in it. Host
//! clock reads feed phase accumulators and nothing else, so a run with
//! the profiler attached must be *byte-identical* to the same run
//! without it on every simulated observable — stats JSON, accounting,
//! cycle times, per-node op counts, barrier releases, telemetry JSONL,
//! span JSONL, and the stream's deterministic event lines — on every
//! platform, under both the serial Reference policy and the Parallel
//! policy (where the profiler instruments the fork/join rounds
//! themselves).

use flashsim::engine::{stream, SpanPlan, TimeDelta};
use flashsim::machine::{run_program, MachineConfig, RunResult, SchedPolicy};
use flashsim::platform::{MemModel, Sim, Study};
use flashsim::workloads::{Fft, FftBlocking, ProblemScale};

/// Worker count for the `Parallel` policy under test (same variable the
/// sched-equivalence suite sweeps in CI).
fn eq_workers() -> usize {
    std::env::var("FLASHSIM_EQ_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2)
}

/// Every platform of the study, at a small node count.
fn platforms(study: &Study, nodes: u32) -> Vec<(String, MachineConfig)> {
    let mut out = vec![("hardware".to_owned(), study.hardware(nodes))];
    for sim in [Sim::SimosMipsy(150), Sim::SoloMipsy(150), Sim::SimosMxs] {
        for mem in [MemModel::FlashLite, MemModel::Numa] {
            let cfg = study.sim(sim, nodes, mem);
            out.push((cfg.label(), cfg));
        }
    }
    out
}

/// Both scheduling policies the profiler instruments.
fn policies() -> Vec<(String, SchedPolicy)> {
    vec![
        ("reference".to_owned(), SchedPolicy::Reference),
        (
            format!("parallel(workers={})", eq_workers()),
            SchedPolicy::Parallel {
                workers: eq_workers(),
            },
        ),
    ]
}

/// Folds every simulated observable of a run into one comparable blob.
/// Host-side fields (`manifest` wall numbers, `hostprof` itself) are
/// deliberately excluded — they are *allowed* to differ.
fn observable_bytes(r: &RunResult) -> String {
    format!(
        "{}|{:?}|{:?}|{:?}|{:?}|{}|{}|{}",
        r.stats.to_json(),
        r.total_time,
        r.parallel_time,
        r.ops_per_node,
        r.barrier_releases,
        r.accounting
            .as_ref()
            .map(|a| a.to_json())
            .unwrap_or_default(),
        r.telemetry
            .as_ref()
            .map(|t| t.to_jsonl())
            .unwrap_or_default(),
        r.spans.as_ref().map(|s| s.to_jsonl()).unwrap_or_default(),
    )
}

#[test]
fn attaching_hostprof_changes_no_simulated_byte() {
    let study = Study::scaled();
    let prog = Fft::sized(ProblemScale::Tiny, 2, FftBlocking::Cache);
    for (label, base) in platforms(&study, 2) {
        for (pname, policy) in policies() {
            let mut cfg = base.clone();
            cfg.sched = policy;
            cfg.profile = true;
            cfg.telemetry = Some(TimeDelta::from_us(1));
            cfg.spans = Some(SpanPlan::all(7));
            let mut on = cfg.clone();
            on.hostprof = true;
            let detached = run_program(cfg, &prog).expect("detached run completes");
            let attached = run_program(on, &prog).expect("attached run completes");
            assert_eq!(
                observable_bytes(&attached),
                observable_bytes(&detached),
                "{label}/{pname}: hostprof must not change simulated state"
            );
            assert!(
                detached.hostprof.is_none(),
                "{label}/{pname}: detached run must carry no host report"
            );
            let report = attached
                .hostprof
                .as_ref()
                .expect("attached run carries a host report");
            assert_eq!(
                report.phase_ns.iter().sum::<u64>(),
                report.total_ns,
                "{label}/{pname}: phase times must tile the run window exactly"
            );
        }
    }
}

#[test]
fn hostprof_leaves_deterministic_stream_events_untouched() {
    // The stream emitter is instrumented from inside (the `Stream`
    // phase guard wraps every flush), so the live protocol is where an
    // isolation bug would leak first. Advisory progress lines carry
    // host occupancy by design; the *deterministic* lines must not
    // move a byte.
    let dir = std::env::temp_dir().join(format!("flashsim-hostprof-iso-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    let study = Study::scaled();
    let prog = Fft::sized(ProblemScale::Tiny, 2, FftBlocking::Cache);
    let mut cfg = study.sim(Sim::SimosMipsy(150), 2, MemModel::FlashLite);
    cfg.sched = SchedPolicy::Parallel {
        workers: eq_workers(),
    };
    cfg.telemetry = Some(TimeDelta::from_us(1));
    cfg.profile = true;
    let mut texts = Vec::new();
    for hostprof in [false, true] {
        let path = dir.join(if hostprof { "on.stream" } else { "off.stream" });
        let mut c = cfg.clone();
        c.hostprof = hostprof;
        c.stream = Some(path.clone());
        run_program(c, &prog).expect("streamed run completes");
        let text = std::fs::read_to_string(&path).expect("stream file written");
        stream::validate_jsonl(&text).expect("stream validates");
        texts.push(text);
    }
    assert_eq!(
        stream::deterministic_lines(&texts[0]),
        stream::deterministic_lines(&texts[1]),
        "hostprof must not perturb the deterministic stream events"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
