//! The optimized schedulers' correctness contract: on every platform, a
//! run under the default `Batched` policy *and* under the `Parallel`
//! policy (nodes sharded across host worker threads under the
//! conservative lookahead horizon) is *bit-identical* to the same run
//! under the `Reference` policy (one op per scheduling decision, linear
//! laggard scan) — same stats JSON, same accounting, same parallel/total
//! times, same barrier releases, same per-node op counts, same telemetry
//! and span JSONL. The batching, the laggard heap, the flat stream
//! cursor, the L1-hit fast path, and the fork/join rounds are all pure
//! host-side optimizations; nothing about the simulated machine may
//! move, at any worker count (`FLASHSIM_EQ_WORKERS` sweeps it in CI).

use flashsim::attrib::run_profiled;
use flashsim::engine::{FaultPlan, SpanPlan, Time, TimeDelta};
use flashsim::machine::{run_program, Machine, MachineConfig, RunResult, SchedPolicy};
use flashsim::platform::{MemModel, Sim, Study};
use flashsim::workloads::{Fft, FftBlocking, ProblemScale, SnCase, Snbench, SyncStorm};
use std::sync::{Arc, Mutex};

/// Worker count for the `Parallel` policy under test. `scripts/check.sh`
/// sweeps 1, 2, and 0 (= host parallelism) through this variable; the
/// default exercises real multi-worker interleavings everywhere.
fn eq_workers() -> usize {
    std::env::var("FLASHSIM_EQ_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2)
}

/// The optimized policies, each proven against `Reference`.
fn candidates() -> Vec<(String, SchedPolicy)> {
    let w = eq_workers();
    vec![
        ("batched".to_owned(), SchedPolicy::Batched),
        (
            format!("parallel(workers={w})"),
            SchedPolicy::Parallel { workers: w },
        ),
    ]
}

/// Every platform of the study, at a small node count.
fn platforms(study: &Study, nodes: u32) -> Vec<(String, MachineConfig)> {
    let mut out = vec![("hardware".to_owned(), study.hardware(nodes))];
    for sim in [Sim::SimosMipsy(150), Sim::SoloMipsy(150), Sim::SimosMxs] {
        for mem in [MemModel::FlashLite, MemModel::Numa] {
            let cfg = study.sim(sim, nodes, mem);
            out.push((cfg.label(), cfg));
        }
    }
    out
}

fn with_policy(mut cfg: MachineConfig, sched: SchedPolicy) -> MachineConfig {
    cfg.sched = sched;
    cfg
}

/// Asserts every schedule-sensitive observable of two runs is identical.
fn assert_identical(label: &str, candidate: &RunResult, reference: &RunResult) {
    assert_eq!(
        candidate.stats.to_json(),
        reference.stats.to_json(),
        "{label}: stats JSON must be byte-identical"
    );
    assert_eq!(
        candidate.parallel_time, reference.parallel_time,
        "{label}: parallel time must match"
    );
    assert_eq!(
        candidate.total_time, reference.total_time,
        "{label}: total time must match"
    );
    assert_eq!(
        candidate.ops_per_node, reference.ops_per_node,
        "{label}: per-node op counts must match"
    );
    assert_eq!(
        candidate.barrier_releases, reference.barrier_releases,
        "{label}: barrier release times must match"
    );
    match (&candidate.accounting, &reference.accounting) {
        (None, None) => {}
        (Some(b), Some(r)) => assert_eq!(
            b.to_json(),
            r.to_json(),
            "{label}: accounting must be byte-identical"
        ),
        _ => panic!("{label}: one run profiled, the other not"),
    }
    match (&candidate.telemetry, &reference.telemetry) {
        (None, None) => {}
        (Some(b), Some(r)) => assert_eq!(
            b.to_jsonl(),
            r.to_jsonl(),
            "{label}: stable telemetry JSONL must be byte-identical"
        ),
        _ => panic!("{label}: one run sampled telemetry, the other not"),
    }
    match (&candidate.spans, &reference.spans) {
        (None, None) => {}
        (Some(b), Some(r)) => assert_eq!(
            b.to_jsonl(),
            r.to_jsonl(),
            "{label}: span JSONL must be byte-identical"
        ),
        _ => panic!("{label}: one run traced spans, the other not"),
    }
}

#[test]
fn candidates_match_reference_on_every_platform() {
    let study = Study::scaled();
    let prog = Fft::sized(ProblemScale::Tiny, 2, FftBlocking::Cache);
    for (label, cfg) in platforms(&study, 2) {
        let r = run_program(with_policy(cfg.clone(), SchedPolicy::Reference), &prog)
            .expect("reference run completes");
        for (pname, policy) in candidates() {
            let c = run_program(with_policy(cfg.clone(), policy), &prog)
                .expect("candidate run completes");
            assert_identical(&format!("{label}/{pname}"), &c, &r);
        }
    }
}

#[test]
fn candidates_match_reference_with_profiler_attached() {
    // The profiler widens the observable surface (per-op marks, wall vs
    // in-op charges, time-phase buckets), so equivalence is asserted
    // under it too.
    let study = Study::scaled();
    let prog = Fft::sized(ProblemScale::Tiny, 2, FftBlocking::Cache);
    for (label, cfg) in platforms(&study, 2) {
        let r = run_profiled(with_policy(cfg.clone(), SchedPolicy::Reference), &prog)
            .expect("reference run completes");
        for (pname, policy) in candidates() {
            let c = run_profiled(with_policy(cfg.clone(), policy), &prog)
                .expect("candidate run completes");
            assert_identical(&format!("{label}/{pname}"), &c, &r);
        }
    }
}

#[test]
fn candidates_match_reference_with_telemetry_and_spans() {
    // Telemetry buckets are per-window sums and span sampling happens
    // only on the serial shared paths, so both exports must be
    // byte-identical under the parallel policy's fork/join rounds too —
    // at four nodes, where rounds actually fork several nodes at once.
    let study = Study::scaled();
    let prog = Fft::sized(ProblemScale::Tiny, 4, FftBlocking::Cache);
    for (label, mut cfg) in platforms(&study, 4) {
        cfg.telemetry = Some(TimeDelta::from_us(1));
        cfg.spans = Some(SpanPlan::all(7));
        let r = run_program(with_policy(cfg.clone(), SchedPolicy::Reference), &prog)
            .expect("reference run completes");
        for (pname, policy) in candidates() {
            let c = run_program(with_policy(cfg.clone(), policy), &prog)
                .expect("candidate run completes");
            assert_identical(&format!("{label}/{pname}"), &c, &r);
        }
    }
}

#[test]
fn candidates_match_reference_on_sync_heavy_storm() {
    // Lock hand-off chains, queueing, and per-round barriers: the batch
    // breaker, the post-sync heap rebuild, and the parallel policy's
    // horizon collapse (every node's next shared op is a sync) get
    // exercised constantly.
    let study = Study::scaled();
    let prog = SyncStorm::new(4, 6, 5);
    for (label, cfg) in platforms(&study, 4) {
        let r = run_profiled(with_policy(cfg.clone(), SchedPolicy::Reference), &prog)
            .expect("reference run completes");
        for (pname, policy) in candidates() {
            let c = run_profiled(with_policy(cfg.clone(), policy), &prog)
                .expect("candidate run completes");
            assert_identical(&format!("{label}/{pname}"), &c, &r);
        }
    }
}

#[test]
fn candidates_match_reference_on_snbench_chase() {
    // The single-runnable-node regime (node 0 chasing alone between
    // barriers) is where batching earns its speedup and where the
    // parallel policy must degrade gracefully to serial batches.
    let study = Study::scaled();
    let prog = Snbench::new(SnCase::all()[2], study.geometry.l2.bytes);
    for (label, cfg) in [
        ("hardware".to_owned(), study.hardware(4)),
        (
            "simos-mipsy".to_owned(),
            study.sim(Sim::SimosMipsy(150), 4, MemModel::FlashLite),
        ),
    ] {
        let r = run_program(with_policy(cfg.clone(), SchedPolicy::Reference), &prog)
            .expect("reference run completes");
        for (pname, policy) in candidates() {
            let c = run_program(with_policy(cfg.clone(), policy), &prog)
                .expect("candidate run completes");
            assert_identical(&format!("{label}/{pname}"), &c, &r);
        }
    }
}

#[test]
fn candidates_match_reference_under_fault_injection() {
    // Latency perturbation draws from the injector's shared RNG on every
    // memory transaction, so the *order* of shared interactions is
    // directly observable: any schedule divergence scrambles the draws
    // and the stats.
    let study = Study::scaled();
    let prog = Fft::sized(ProblemScale::Tiny, 2, FftBlocking::Cache);
    let plan = FaultPlan {
        seed: 0xFA57,
        latency_prob: 0.25,
        latency_spread: 1.5,
        ..FaultPlan::none()
    };
    for (label, mut cfg) in platforms(&study, 2) {
        cfg.faults = Some(plan);
        let r = run_profiled(with_policy(cfg.clone(), SchedPolicy::Reference), &prog)
            .expect("reference run completes");
        for (pname, policy) in candidates() {
            let c = run_profiled(with_policy(cfg.clone(), policy), &prog)
                .expect("candidate run completes");
            assert_identical(&format!("{label}/{pname}"), &c, &r);
        }
    }
}

#[test]
fn candidates_match_reference_on_injected_stall_failure() {
    // A stalled node starves the machine; every policy must fail with
    // the same structured error (same op count, same node snapshots).
    // The parallel policy's fork phase runs the same per-op stall check,
    // so the node parks at exactly the same consumed-op count.
    let study = Study::scaled();
    let prog = SyncStorm::new(2, 4, 3);
    let plan = FaultPlan {
        seed: 7,
        stall_node: Some(1),
        stall_after_ops: 120,
        ..FaultPlan::none()
    };
    let mut cfg = study.sim(Sim::SimosMipsy(150), 2, MemModel::FlashLite);
    cfg.faults = Some(plan);
    let r = run_program(with_policy(cfg.clone(), SchedPolicy::Reference), &prog)
        .expect_err("stalled run must fail");
    for (pname, policy) in candidates() {
        let c = run_program(with_policy(cfg.clone(), policy), &prog)
            .expect_err("stalled run must fail");
        assert_eq!(
            format!("{c:?}"),
            format!("{r:?}"),
            "{pname}: structured stall failures must be identical"
        );
    }
}

#[test]
fn parallel_restore_from_checkpoint_matches_reference() {
    // The sched-equivalence contract must survive a checkpoint cycle
    // under the parallel policy: snapshot a Parallel run mid-flight at a
    // quiescent point, restore it (checkpoints are worker-count
    // invariant — `key()` omits the count), resume under Parallel, and
    // land exactly on the Reference policy's numbers.
    let study = Study::scaled();
    let program = Fft::sized(ProblemScale::Tiny, 2, FftBlocking::Cache);
    let base = study.sim(Sim::SimosMipsy(150), 2, MemModel::FlashLite);
    let observed = |mut cfg: MachineConfig| {
        cfg.profile = true;
        cfg.telemetry = Some(TimeDelta::from_ns(500));
        cfg
    };
    let mut reference = base.clone();
    reference.sched = SchedPolicy::Reference;
    let ref_straight = run_program(observed(reference), &program).expect("reference run");

    let par = with_policy(
        base.clone(),
        SchedPolicy::Parallel {
            workers: eq_workers(),
        },
    );
    let ckpts: Arc<Mutex<Vec<(u64, String)>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&ckpts);
    let mut m = Machine::new(observed(par.clone()), &program).expect("machine builds");
    m.attach_ckpt_sink(Box::new(move |seq, _at: Time, text: &str| {
        sink.lock().expect("sink lock").push((seq, text.to_owned()));
    }));
    let straight = m.run().expect("parallel run completes");
    drop(m);
    assert_identical("parallel straight vs reference", &straight, &ref_straight);

    let ckpts = ckpts.lock().expect("sink lock").clone();
    assert!(
        ckpts.len() >= 2,
        "multi-barrier FFT must checkpoint repeatedly"
    );
    let mid = &ckpts[ckpts.len() / 2];
    let mut m = Machine::restore(observed(par), &program, &mid.1).expect("parallel ckpt restores");
    let resumed = m.run().expect("resumed parallel run completes");
    assert_identical("parallel restore vs reference", &resumed, &ref_straight);
}
