//! The batched-lookahead scheduler's correctness contract: on every
//! platform, a run under the default `Batched` policy is *bit-identical*
//! to the same run under the `Reference` policy (one op per scheduling
//! decision, linear laggard scan) — same stats JSON, same accounting,
//! same parallel/total times, same barrier releases, same per-node op
//! counts. The batching, the laggard heap, the flat stream cursor, and
//! the L1-hit fast path are all pure host-side optimizations; nothing
//! about the simulated machine may move.

use flashsim::attrib::run_profiled;
use flashsim::engine::FaultPlan;
use flashsim::machine::{run_program, MachineConfig, RunResult, SchedPolicy};
use flashsim::platform::{MemModel, Sim, Study};
use flashsim::workloads::{Fft, FftBlocking, ProblemScale, SnCase, Snbench, SyncStorm};

/// Every platform of the study, at a small node count.
fn platforms(study: &Study, nodes: u32) -> Vec<(String, MachineConfig)> {
    let mut out = vec![("hardware".to_owned(), study.hardware(nodes))];
    for sim in [Sim::SimosMipsy(150), Sim::SoloMipsy(150), Sim::SimosMxs] {
        for mem in [MemModel::FlashLite, MemModel::Numa] {
            let cfg = study.sim(sim, nodes, mem);
            out.push((cfg.label(), cfg));
        }
    }
    out
}

fn with_policy(mut cfg: MachineConfig, sched: SchedPolicy) -> MachineConfig {
    cfg.sched = sched;
    cfg
}

/// Asserts every schedule-sensitive observable of two runs is identical.
fn assert_identical(label: &str, batched: &RunResult, reference: &RunResult) {
    assert_eq!(
        batched.stats.to_json(),
        reference.stats.to_json(),
        "{label}: stats JSON must be byte-identical"
    );
    assert_eq!(
        batched.parallel_time, reference.parallel_time,
        "{label}: parallel time must match"
    );
    assert_eq!(
        batched.total_time, reference.total_time,
        "{label}: total time must match"
    );
    assert_eq!(
        batched.ops_per_node, reference.ops_per_node,
        "{label}: per-node op counts must match"
    );
    assert_eq!(
        batched.barrier_releases, reference.barrier_releases,
        "{label}: barrier release times must match"
    );
    match (&batched.accounting, &reference.accounting) {
        (None, None) => {}
        (Some(b), Some(r)) => assert_eq!(
            b.to_json(),
            r.to_json(),
            "{label}: accounting must be byte-identical"
        ),
        _ => panic!("{label}: one run profiled, the other not"),
    }
}

#[test]
fn batched_matches_reference_on_every_platform() {
    let study = Study::scaled();
    let prog = Fft::sized(ProblemScale::Tiny, 2, FftBlocking::Cache);
    for (label, cfg) in platforms(&study, 2) {
        let b = run_program(with_policy(cfg.clone(), SchedPolicy::Batched), &prog)
            .expect("batched run completes");
        let r = run_program(with_policy(cfg, SchedPolicy::Reference), &prog)
            .expect("reference run completes");
        assert_identical(&label, &b, &r);
    }
}

#[test]
fn batched_matches_reference_with_profiler_attached() {
    // The profiler widens the observable surface (per-op marks, wall vs
    // in-op charges, time-phase buckets), so equivalence is asserted
    // under it too.
    let study = Study::scaled();
    let prog = Fft::sized(ProblemScale::Tiny, 2, FftBlocking::Cache);
    for (label, cfg) in platforms(&study, 2) {
        let b = run_profiled(with_policy(cfg.clone(), SchedPolicy::Batched), &prog)
            .expect("batched run completes");
        let r = run_profiled(with_policy(cfg, SchedPolicy::Reference), &prog)
            .expect("reference run completes");
        assert_identical(&label, &b, &r);
    }
}

#[test]
fn batched_matches_reference_on_sync_heavy_storm() {
    // Lock hand-off chains, queueing, and per-round barriers: the batch
    // breaker and the post-sync heap rebuild get exercised constantly.
    let study = Study::scaled();
    let prog = SyncStorm::new(4, 6, 5);
    for (label, cfg) in platforms(&study, 4) {
        let b = run_profiled(with_policy(cfg.clone(), SchedPolicy::Batched), &prog)
            .expect("batched run completes");
        let r = run_profiled(with_policy(cfg, SchedPolicy::Reference), &prog)
            .expect("reference run completes");
        assert_identical(&label, &b, &r);
    }
}

#[test]
fn batched_matches_reference_on_snbench_chase() {
    // The single-runnable-node regime (node 0 chasing alone between
    // barriers) is where batching earns its speedup; prove it changes
    // nothing.
    let study = Study::scaled();
    let prog = Snbench::new(SnCase::all()[2], study.geometry.l2.bytes);
    for (label, cfg) in [
        ("hardware".to_owned(), study.hardware(4)),
        (
            "simos-mipsy".to_owned(),
            study.sim(Sim::SimosMipsy(150), 4, MemModel::FlashLite),
        ),
    ] {
        let b = run_program(with_policy(cfg.clone(), SchedPolicy::Batched), &prog)
            .expect("batched run completes");
        let r = run_program(with_policy(cfg, SchedPolicy::Reference), &prog)
            .expect("reference run completes");
        assert_identical(&label, &b, &r);
    }
}

#[test]
fn batched_matches_reference_under_fault_injection() {
    // Latency perturbation draws from the injector's shared RNG on every
    // memory transaction, so the *order* of shared interactions is
    // directly observable: any schedule divergence scrambles the draws
    // and the stats.
    let study = Study::scaled();
    let prog = Fft::sized(ProblemScale::Tiny, 2, FftBlocking::Cache);
    let plan = FaultPlan {
        seed: 0xFA57,
        latency_prob: 0.25,
        latency_spread: 1.5,
        ..FaultPlan::none()
    };
    for (label, mut cfg) in platforms(&study, 2) {
        cfg.faults = Some(plan);
        let b = run_profiled(with_policy(cfg.clone(), SchedPolicy::Batched), &prog)
            .expect("batched run completes");
        let r = run_profiled(with_policy(cfg, SchedPolicy::Reference), &prog)
            .expect("reference run completes");
        assert_identical(&label, &b, &r);
    }
}

#[test]
fn batched_matches_reference_on_injected_stall_failure() {
    // A stalled node starves the machine; both policies must fail with
    // the same structured error (same op count, same node snapshots).
    let study = Study::scaled();
    let prog = SyncStorm::new(2, 4, 3);
    let plan = FaultPlan {
        seed: 7,
        stall_node: Some(1),
        stall_after_ops: 120,
        ..FaultPlan::none()
    };
    let mut cfg = study.sim(Sim::SimosMipsy(150), 2, MemModel::FlashLite);
    cfg.faults = Some(plan);
    let b = run_program(with_policy(cfg.clone(), SchedPolicy::Batched), &prog)
        .expect_err("stalled run must fail");
    let r = run_program(with_policy(cfg, SchedPolicy::Reference), &prog)
        .expect_err("stalled run must fail");
    assert_eq!(
        format!("{b:?}"),
        format!("{r:?}"),
        "structured stall failures must be identical"
    );
}
