//! Machine-level property-style tests: randomly generated parallel
//! programs (random segments, access patterns, barrier structure) must
//! run to completion on every platform with identical op streams, no
//! deadlock, and deterministic results. Randomized cases come from seeded
//! loops over the in-tree [`flashsim::engine::Rng`] (this workspace
//! builds offline, so no external property-testing framework).

use flashsim::engine::Rng;
use flashsim::platform::{MemModel, Sim, Study};
use flashsim::runner::run_once;
use flashsim_isa::{OpClass, Placement, Program, Segment, Sink, VAddr};

/// A randomly shaped but well-formed parallel program.
#[derive(Debug, Clone)]
struct RandomProgram {
    threads: usize,
    /// Per phase: (ops per thread, stride, shared: everyone reads thread
    /// 0's region instead of their own).
    phases: Vec<(u16, u8, bool)>,
    use_lock: bool,
    placement: Placement,
}

const SEG_BYTES: u64 = 64 * 1024;
const BASE: u64 = 0x100000;

impl Program for RandomProgram {
    fn name(&self) -> String {
        "random".into()
    }

    fn num_threads(&self) -> usize {
        self.threads
    }

    fn segments(&self) -> Vec<Segment> {
        vec![
            Segment::new(
                "data",
                VAddr(BASE),
                SEG_BYTES * self.threads as u64,
                self.placement,
            ),
            Segment::new("lock", VAddr(0x10000), 4096, Placement::Node(0)),
        ]
    }

    fn thread_body(&self, tid: usize) -> Box<dyn FnOnce(&mut Sink) + Send + 'static> {
        let prog = self.clone();
        Box::new(move |sink| {
            let my_base = BASE + tid as u64 * SEG_BYTES;
            // Touch my region so placement happens.
            for i in (0..SEG_BYTES).step_by(4096) {
                sink.store(VAddr(my_base + i));
            }
            sink.barrier();
            for &(ops, stride, shared) in &prog.phases {
                let base = if shared { BASE } else { my_base };
                let stride = u64::from(stride.max(1)) * 8;
                for k in 0..u64::from(ops) {
                    let addr = base + (k * stride) % SEG_BYTES;
                    match k % 5 {
                        0 | 1 => {
                            sink.load(VAddr(addr));
                        }
                        2 => sink.store(VAddr(addr)),
                        3 => sink.work(OpClass::FpMul, 2),
                        _ => sink.alu(3),
                    }
                }
                if prog.use_lock {
                    sink.lock(7, VAddr(0x10000));
                    sink.store(VAddr(0x10080));
                    sink.unlock(7, VAddr(0x10000));
                }
                sink.barrier();
            }
        })
    }

    fn timing_barrier(&self) -> Option<u32> {
        Some(0)
    }
}

fn random_program(rng: &mut Rng) -> RandomProgram {
    let threads = [1usize, 2, 4][rng.gen_range(3) as usize];
    let phases = (0..1 + rng.gen_range(3))
        .map(|_| {
            (
                1 + rng.gen_range(399) as u16,
                1 + rng.gen_range(31) as u8,
                rng.gen_range(2) == 0,
            )
        })
        .collect();
    let placement = [
        Placement::Blocked,
        Placement::Node(0),
        Placement::Interleaved,
    ][rng.gen_range(3) as usize];
    RandomProgram {
        threads,
        phases,
        use_lock: rng.gen_range(2) == 0,
        placement,
    }
}

/// Any well-formed program completes on every platform with the same op
/// stream, and repeated runs are bit-identical.
#[test]
fn random_programs_run_everywhere() {
    let mut rng = Rng::seeded(0xf1a5);
    for _ in 0..24 {
        let prog = random_program(&mut rng);
        let study = Study::scaled();
        let nodes = prog.threads as u32;

        let hw = run_once(study.hardware(nodes), &prog);
        assert!(hw.total_time.as_ns() > 0);
        assert!(hw.parallel_time <= hw.total_time);

        let solo = run_once(
            study.sim(Sim::SoloMipsy(300), nodes, MemModel::FlashLite),
            &prog,
        );
        assert_eq!(&solo.ops_per_node, &hw.ops_per_node, "same binary violated");

        let numa = run_once(study.sim(Sim::SimosMxs, nodes, MemModel::Numa), &prog);
        assert_eq!(&numa.ops_per_node, &hw.ops_per_node);

        // Every barrier released exactly once, in id order.
        let ids: Vec<u32> = hw.barrier_releases.iter().map(|(id, _)| *id).collect();
        let expect: Vec<u32> = (0..ids.len() as u32).collect();
        assert_eq!(ids, expect);

        // Determinism.
        let again = run_once(study.hardware(nodes), &prog);
        assert_eq!(again.total_time, hw.total_time);
        assert_eq!(again.stats, hw.stats);
    }
}
