//! Machine-level property tests: randomly generated parallel programs
//! (random segments, access patterns, barrier structure) must run to
//! completion on every platform with identical op streams, no deadlock,
//! and deterministic results.

use flashsim::platform::{MemModel, Sim, Study};
use flashsim::runner::run_once;
use flashsim_isa::{OpClass, Placement, Program, Segment, Sink, VAddr};
use proptest::prelude::*;

/// A randomly shaped but well-formed parallel program.
#[derive(Debug, Clone)]
struct RandomProgram {
    threads: usize,
    /// Per phase: (ops per thread, stride, shared: everyone reads thread
    /// 0's region instead of their own).
    phases: Vec<(u16, u8, bool)>,
    use_lock: bool,
    placement: Placement,
}

const SEG_BYTES: u64 = 64 * 1024;
const BASE: u64 = 0x100000;

impl Program for RandomProgram {
    fn name(&self) -> String {
        "random".into()
    }

    fn num_threads(&self) -> usize {
        self.threads
    }

    fn segments(&self) -> Vec<Segment> {
        vec![
            Segment::new(
                "data",
                VAddr(BASE),
                SEG_BYTES * self.threads as u64,
                self.placement,
            ),
            Segment::new("lock", VAddr(0x10000), 4096, Placement::Node(0)),
        ]
    }

    fn thread_body(&self, tid: usize) -> Box<dyn FnOnce(&mut Sink) + Send + 'static> {
        let prog = self.clone();
        Box::new(move |sink| {
            let my_base = BASE + tid as u64 * SEG_BYTES;
            // Touch my region so placement happens.
            for i in (0..SEG_BYTES).step_by(4096) {
                sink.store(VAddr(my_base + i));
            }
            sink.barrier();
            for &(ops, stride, shared) in &prog.phases {
                let base = if shared { BASE } else { my_base };
                let stride = u64::from(stride.max(1)) * 8;
                for k in 0..u64::from(ops) {
                    let addr = base + (k * stride) % SEG_BYTES;
                    match k % 5 {
                        0 | 1 => {
                            sink.load(VAddr(addr));
                        }
                        2 => sink.store(VAddr(addr)),
                        3 => sink.work(OpClass::FpMul, 2),
                        _ => sink.alu(3),
                    }
                }
                if prog.use_lock {
                    sink.lock(7, VAddr(0x10000));
                    sink.store(VAddr(0x10080));
                    sink.unlock(7, VAddr(0x10000));
                }
                sink.barrier();
            }
        })
    }

    fn timing_barrier(&self) -> Option<u32> {
        Some(0)
    }
}

fn program_strategy() -> impl Strategy<Value = RandomProgram> {
    (
        prop_oneof![Just(1usize), Just(2), Just(4)],
        proptest::collection::vec((1u16..400, 1u8..32, any::<bool>()), 1..4),
        any::<bool>(),
        prop_oneof![
            Just(Placement::Blocked),
            Just(Placement::Node(0)),
            Just(Placement::Interleaved)
        ],
    )
        .prop_map(|(threads, phases, use_lock, placement)| RandomProgram {
            threads,
            phases,
            use_lock,
            placement,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any well-formed program completes on every platform with the same
    /// op stream, and repeated runs are bit-identical.
    #[test]
    fn random_programs_run_everywhere(prog in program_strategy()) {
        let study = Study::scaled();
        let nodes = prog.threads as u32;

        let hw = run_once(study.hardware(nodes), &prog);
        prop_assert!(hw.total_time.as_ns() > 0);
        prop_assert!(hw.parallel_time <= hw.total_time);

        let solo = run_once(study.sim(Sim::SoloMipsy(300), nodes, MemModel::FlashLite), &prog);
        prop_assert_eq!(&solo.ops_per_node, &hw.ops_per_node, "same binary violated");

        let numa = run_once(study.sim(Sim::SimosMxs, nodes, MemModel::Numa), &prog);
        prop_assert_eq!(&numa.ops_per_node, &hw.ops_per_node);

        // Every barrier released exactly once, in id order.
        let ids: Vec<u32> = hw.barrier_releases.iter().map(|(id, _)| *id).collect();
        let expect: Vec<u32> = (0..ids.len() as u32).collect();
        prop_assert_eq!(ids, expect);

        // Determinism.
        let again = run_once(study.hardware(nodes), &prog);
        prop_assert_eq!(again.total_time, hw.total_time);
        prop_assert_eq!(again.stats, hw.stats);
    }
}
