//! End-to-end test of the paper's §3.1.2 methodology: microbenchmarks
//! measure the gold standard, the fit tunes the simulators, and the tuned
//! simulators agree with the hardware on every Table-3 protocol case.

use flashsim::calibrate::calibrate;
use flashsim::platform::Study;
use flashsim::report::{paper, render_table3};

#[test]
fn closing_the_simulation_loop() {
    let study = Study::scaled();
    let cal = calibrate(&study);

    // The TLB microbenchmark recovers approximately the true 65-cycle
    // refill cost (against the 25/35-cycle untuned model predictions).
    assert!(
        (55..=85).contains(&cal.tuning.tlb_refill_cycles),
        "TLB calibration found {} cycles, expected ~{}",
        cal.tuning.tlb_refill_cycles,
        paper::TLB_REFILL.0
    );
    assert!(cal.tuning.tlb_refill_cycles > paper::TLB_REFILL.1);
    assert!(cal.tuning.tlb_refill_cycles > paper::TLB_REFILL.2);

    // All five protocol cases fit to within 5% after tuning (the paper's
    // tuned column sits within 5% of hardware too).
    assert_eq!(cal.table3.len(), 5);
    for row in &cal.table3 {
        assert!(
            (row.tuned_relative() - 1.0).abs() < 0.05,
            "{}: tuned relative {:.3}",
            row.case,
            row.tuned_relative()
        );
    }

    // Untuned errors carry the paper's signs at the extremes: the local
    // clean path is optimistic, the dirty-remote path pessimistic.
    assert!(
        cal.table3[0].untuned_relative() < 1.0,
        "untuned LC should be fast"
    );
    assert!(
        cal.table3[4].untuned_relative() > 1.0,
        "untuned RDR should be slow"
    );

    // The Mipsy secondary-cache-interface occupancy is discovered (the
    // gold standard's true value is 160ns).
    let iface = cal
        .tuning
        .mipsy_l2_iface
        .expect("calibration must find the interface occupancy");
    assert!(
        (60.0..=400.0).contains(&iface.as_ns_f64()),
        "implausible interface occupancy {}ns",
        iface.as_ns_f64()
    );

    // The rendered table is complete and self-consistent.
    let rendered = render_table3(&cal);
    for label in [
        "Local, clean",
        "Local, dirty remote",
        "Remote, clean",
        "Remote, dirty home",
        "Remote, dirty remote",
    ] {
        assert!(rendered.contains(label), "missing row {label}");
    }
    assert!(rendered.contains("65"), "paper reference value shown");
}

#[test]
fn calibration_is_reproducible() {
    let study = Study::scaled();
    let a = calibrate(&study);
    let b = calibrate(&study);
    assert_eq!(a.tuning.tlb_refill_cycles, b.tuning.tlb_refill_cycles);
    assert_eq!(a.tuning.flashlite, b.tuning.flashlite);
    assert_eq!(a.tuning.mipsy_l2_iface, b.tuning.mipsy_l2_iface);
}
