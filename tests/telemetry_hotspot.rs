//! The paper's hotspot signature, read off the telemetry series: on
//! FlashLite, MAGIC inbound-queue occupancy at the hot home node rises
//! with the hotspot degree (how many nodes hammer lines homed there at
//! once); on the contention-free NUMA model the metric does not exist at
//! all — the model deliberately registers no `magic.queue_ps`, because
//! it models no inbound queueing to occupy.

use flashsim::engine::{Telemetry, Time, TimeDelta};
use flashsim::flashlite::{FlashLite, FlashLiteParams};
use flashsim::mem::{AccessKind, LineAddr, MemRequest, MemorySystem};
use flashsim::numa::{Numa, NumaParams};

const NODES: u32 = 8;
const NODE_MEM: u64 = 1 << 24;
const ROUNDS: u64 = 40;

/// Drives `degree` requesters at lines homed on node 0, all arriving
/// simultaneously each round — a synthetic hotspot phase — and returns
/// the sampled telemetry.
fn drive_hotspot(mem: &mut dyn MemorySystem, degree: u32) -> Telemetry {
    let telemetry = Telemetry::with_cadence(TimeDelta::from_us(1));
    mem.attach_telemetry(telemetry.clone());
    for round in 0..ROUNDS {
        // Space rounds far enough apart that each round's backlog fully
        // drains: the occupancy each round then isolates the simultaneous
        // arrival burst, which scales with the degree.
        let now = Time::ZERO + TimeDelta::from_us(10) * round;
        for n in 1..=degree {
            // Distinct lines, all with address < NODE_MEM: homed at 0.
            let line = LineAddr(((round * u64::from(degree) + u64::from(n)) * 128) % NODE_MEM);
            let _ = mem.access(MemRequest {
                node: n,
                line,
                kind: AccessKind::ReadShared,
                now,
            });
        }
    }
    telemetry
}

fn queue_total(telemetry: &Telemetry) -> Option<u64> {
    let series = telemetry
        .snapshot(Time::ZERO + TimeDelta::from_us(10) * ROUNDS)
        .expect("telemetry is enabled");
    assert!(series.conserved(), "occupancy integrals must close exactly");
    series.get("magic.queue_ps").map(|m| m.total)
}

#[test]
fn flashlite_magic_queue_occupancy_rises_with_hotspot_degree() {
    let mut totals = Vec::new();
    for degree in [1u32, 2, 4, 7] {
        let mut fl = FlashLite::new(NODES, NODE_MEM, FlashLiteParams::hardware())
            .expect("power-of-two node count");
        let telemetry = drive_hotspot(&mut fl, degree);
        let total =
            queue_total(&telemetry).expect("FlashLite must register MAGIC inbound-queue occupancy");
        totals.push((degree, total));
    }
    for pair in totals.windows(2) {
        let (d_lo, t_lo) = pair[0];
        let (d_hi, t_hi) = pair[1];
        assert!(
            t_hi > t_lo,
            "MAGIC queue occupancy must rise with hotspot degree: \
             degree {d_lo} -> {t_lo} ps, degree {d_hi} -> {t_hi} ps"
        );
    }
    // Degree 1 has no simultaneous contender, so the inbound queue is
    // (nearly) empty; the hotspot signal is the growth, not the floor.
    let (_, base) = totals[0];
    let (_, top) = totals[totals.len() - 1];
    assert!(
        top > base.saturating_mul(2),
        "hotspot occupancy must grow substantially ({base} -> {top} ps)"
    );
}

#[test]
fn numa_has_no_magic_queue_metric_at_any_degree() {
    for degree in [1u32, 4, 7] {
        let mut numa = Numa::new(NODES, NODE_MEM, NumaParams::matched());
        let telemetry = drive_hotspot(&mut numa, degree);
        assert_eq!(
            queue_total(&telemetry),
            None,
            "the NUMA model must not register magic.queue_ps at degree {degree}: \
             it models no inbound queueing — the paper's omitted-occupancy signature"
        );
    }
}
