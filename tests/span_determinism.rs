//! Integration tests for the causal span tracer: the seeded sampler is
//! deterministic and platform-independent, every recorded tree nests
//! and its charges tile the transaction exactly (reconciling with the
//! `LatencyBreakdown` decomposition in integer picoseconds), the
//! machine-layer JSONL export is byte-identical across reruns and
//! across the `Batched`/`Reference` scheduling policies, and the span
//! diff shows MAGIC occupancy legs on FlashLite that have no
//! counterpart on the contention-free NUMA model.

use flashsim::engine::span::{kinds_only_in, validate_jsonl};
use flashsim::engine::{
    CategoryMask, SpanPlan, SpanSet, SpanTracer, Time, TimeDelta, TraceCategory, Tracer,
};
use flashsim::flashlite::{FlashLite, FlashLiteParams};
use flashsim::machine::{run_program, Machine, SchedPolicy};
use flashsim::mem::{AccessKind, LineAddr, MemOutcome, MemRequest, MemorySystem};
use flashsim::numa::{Numa, NumaParams};
use flashsim::platform::{MemModel, Sim, Study};
use flashsim::workloads::{Fft, FftBlocking, ProblemScale};

const NODES: u32 = 8;
const NODE_MEM: u64 = 1 << 24;

fn flashlite() -> FlashLite {
    FlashLite::new(NODES, NODE_MEM, FlashLiteParams::hardware()).expect("power-of-two node count")
}

fn numa() -> Numa {
    Numa::new(NODES, NODE_MEM, NumaParams::matched())
}

/// One demand access driven the way the machine layer drives it: the
/// span transaction opens at issue and closes at completion.
fn access(
    mem: &mut dyn MemorySystem,
    spans: &SpanTracer,
    node: u32,
    line: u64,
    kind: AccessKind,
    now: Time,
) -> MemOutcome {
    let on = spans.txn_try_begin(node, line, kind.key(), now);
    let out = mem.access(MemRequest {
        node,
        line: LineAddr(line),
        kind,
        now,
    });
    if on {
        spans.txn_end(out.done_at, out.case.key());
    }
    out
}

/// A coherence-rich script exercising every protocol path: clean remote
/// reads, dirty-owner interventions (with the off-path sharing
/// writeback), demand-write invalidation rounds, and ownership upgrades
/// with sharers. Lines are homed at node 0; requesters are remote.
/// Returns each access's outcome in issue order.
fn drive_protocol_mix(mem: &mut dyn MemorySystem, spans: &SpanTracer) -> Vec<MemOutcome> {
    let mut t = Time::ZERO;
    let mut step = |mem: &mut dyn MemorySystem, node: u32, line: u64, kind: AccessKind| {
        let out = access(mem, spans, node, line, kind, t);
        t = out.done_at + TimeDelta::from_ns(100);
        out
    };
    let script = [
        // Clean read from memory at the home.
        (1, 0x1000, AccessKind::ReadShared),
        // Dirty the line at node 2, then read it from node 3: owner
        // intervention plus the background sharing writeback to home 0.
        (2, 0x2000, AccessKind::ReadExclusive),
        (3, 0x2000, AccessKind::ReadShared),
        // Build a sharing list, then write: demand invalidation round.
        (1, 0x3000, AccessKind::ReadShared),
        (4, 0x3000, AccessKind::ReadShared),
        (5, 0x3000, AccessKind::ReadExclusive),
        // Shared at two nodes, then upgrade at one: the round IS the path.
        (6, 0x4000, AccessKind::ReadShared),
        (7, 0x4000, AccessKind::ReadShared),
        (6, 0x4000, AccessKind::Upgrade),
    ];
    script
        .into_iter()
        .map(|(node, line, kind)| step(mem, node, line, kind))
        .collect()
}

fn trace_protocol_mix(
    mut mem: Box<dyn MemorySystem>,
    plan: SpanPlan,
) -> (SpanSet, Vec<MemOutcome>) {
    let tracer = SpanTracer::new(plan);
    mem.attach_spans(tracer.clone());
    let outs = drive_protocol_mix(&mut *mem, &tracer);
    (tracer.snapshot().expect("tracer is enabled"), outs)
}

#[test]
fn sampler_is_deterministic_and_seed_sensitive() {
    let (a, _) = trace_protocol_mix(Box::new(flashlite()), SpanPlan::sampled(7, 2));
    let (b, _) = trace_protocol_mix(Box::new(flashlite()), SpanPlan::sampled(7, 2));
    assert_eq!(
        a.to_jsonl(),
        b.to_jsonl(),
        "same plan, same drive: the export must be byte-identical"
    );
    // Different seeds pick different subsets (the drive has 9 demand
    // transactions; at period 2 a collision of all picks is absurd).
    let keys = |s: &SpanSet| s.txns.iter().map(|t| t.key()).collect::<Vec<_>>();
    let mut distinct = false;
    for seed in 1..=8 {
        let (c, _) = trace_protocol_mix(Box::new(flashlite()), SpanPlan::sampled(seed, 2));
        if keys(&c) != keys(&a) {
            distinct = true;
            break;
        }
    }
    assert!(distinct, "seeds 1..=8 all sampled the same transactions");
    // Period 1 records every demand access; the disabled tracer, none.
    let (all, outs) = trace_protocol_mix(Box::new(flashlite()), SpanPlan::all(7));
    assert_eq!(all.txns.len(), outs.len());
    assert!(SpanTracer::disabled().snapshot().is_none());
}

#[test]
fn charges_tile_and_reconcile_with_latency_breakdown_exactly() {
    use flashsim::engine::SpanClass;
    for (label, mem) in [
        ("flashlite", Box::new(flashlite()) as Box<dyn MemorySystem>),
        ("numa", Box::new(numa())),
    ] {
        let (set, outs) = trace_protocol_mix(mem, SpanPlan::all(7));
        assert_eq!(set.txns.len(), outs.len(), "{label}: period 1 records all");
        for (txn, out) in set.txns.iter().zip(&outs) {
            let id = format!("{label}/{}/{:#x}", txn.kind, txn.line);
            assert!(txn.nested(), "{id}: spans must nest within parents");
            // The tiling invariant: charges sum to the end-to-end
            // latency, so the critical path explains every picosecond.
            assert_eq!(txn.charge_total(), txn.total(), "{id}: legs must tile");
            let path_sum = txn
                .critical_path()
                .iter()
                .fold(TimeDelta::ZERO, |acc, s| acc + s.charge);
            assert_eq!(path_sum, txn.total(), "{id}: critical path sum");
            // Exact integer-ps reconciliation against the transaction's
            // LatencyBreakdown, class by class.
            assert_eq!(
                txn.class_total(SpanClass::Occupancy),
                out.breakdown.occupancy,
                "{id}: occupancy class"
            );
            assert_eq!(
                txn.class_total(SpanClass::Network),
                out.breakdown.network,
                "{id}: network class"
            );
            assert_eq!(
                txn.class_total(SpanClass::Memory),
                out.breakdown.memory,
                "{id}: memory class"
            );
        }
        let jsonl = set.to_jsonl();
        validate_jsonl(&jsonl).unwrap_or_else(|e| panic!("{label}: export invalid: {e}"));
    }
}

#[test]
fn machine_span_export_is_byte_identical_across_reruns_and_policies() {
    let study = Study::scaled();
    let fft = Fft::sized(ProblemScale::Tiny, 2, FftBlocking::Cache);
    for mem in [MemModel::FlashLite, MemModel::Numa] {
        let mut cfg = study.sim(Sim::SimosMipsy(150), 2, mem);
        cfg.spans = Some(SpanPlan::sampled(7, 8));
        let jsonl = |sched: SchedPolicy| {
            let mut cfg = cfg.clone();
            cfg.sched = sched;
            let r = run_program(cfg, &fft).expect("span run completes");
            assert_eq!(
                r.manifest.spans.as_deref(),
                Some("seed=7 period=8 max_txns=4096"),
                "manifest must record the span plan"
            );
            let set = r.spans.expect("spans were attached");
            assert!(!set.txns.is_empty(), "sampler found no transactions");
            set.to_jsonl()
        };
        let a = jsonl(SchedPolicy::Batched);
        let b = jsonl(SchedPolicy::Batched);
        let c = jsonl(SchedPolicy::Reference);
        assert_eq!(a, b, "{mem:?}: rerun must be byte-identical");
        assert_eq!(a, c, "{mem:?}: export must not depend on scheduling policy");
        validate_jsonl(&a).unwrap_or_else(|e| panic!("{mem:?}: machine export invalid: {e}"));
    }
}

#[test]
fn span_flow_events_survive_trace_ring_wraparound() {
    let study = Study::scaled();
    let fft = Fft::sized(ProblemScale::Tiny, 2, FftBlocking::Cache);
    let mut cfg = study.sim(Sim::SimosMipsy(150), 2, MemModel::FlashLite);
    cfg.spans = Some(SpanPlan::all(7));
    // A ring far smaller than the span-marker stream alone (every
    // transaction is sampled): even filtered to the span category the
    // recorder must wrap, keeping the most recent markers.
    let tracer = Tracer::new(256, CategoryMask::only(TraceCategory::Span));
    let mut machine = Machine::new(cfg, &fft).expect("valid configuration");
    machine.attach_tracer(tracer.clone());
    machine.run().expect("traced run completes");
    let trace = tracer.snapshot();
    assert!(trace.dropped > 0, "ring must have wrapped");
    assert_eq!(trace.events.len(), 256);
    let json = trace.to_chrome_json();
    // The surviving tail still carries span flow events, and every
    // span_end maps to a flow-finish phase.
    assert!(
        trace.events.iter().any(|e| e.kind == "span_end"),
        "span markers must appear in the surviving tail"
    );
    assert!(
        json.contains("\"ph\":\"f\",\"bp\":\"e\""),
        "flow finish phase"
    );
}

#[test]
fn span_diff_shows_magic_legs_only_on_flashlite_for_the_same_txn() {
    // The hotspot drive from tests/telemetry_hotspot.rs, spans attached.
    let plan = SpanPlan::sampled(7, 4);
    let collect = |mem: &mut dyn MemorySystem| {
        let tracer = SpanTracer::new(plan);
        mem.attach_spans(tracer.clone());
        for round in 0..40u64 {
            let now = Time::ZERO + TimeDelta::from_us(10) * round;
            for n in 1..=7u32 {
                let line = ((round * 7 + u64::from(n)) * 128) % NODE_MEM;
                access(mem, &tracer, n, line, AccessKind::ReadShared, now);
            }
        }
        tracer.snapshot().expect("tracer is enabled")
    };
    let fl = collect(&mut flashlite());
    let nu = collect(&mut numa());
    let aligned = fl.align(&nu);
    assert!(
        !aligned.is_empty(),
        "the platform-independent sampler must pick the same transactions"
    );
    for (ft, nt) in &aligned {
        assert_eq!(ft.key(), nt.key());
        let fl_only = kinds_only_in(ft, nt);
        let nu_only = kinds_only_in(nt, ft);
        // MAGIC's occupancy legs exist only where MAGIC is modeled; the
        // NUMA side replaces them with fixed-latency controller legs.
        assert!(
            fl_only.contains(&"pi_request"),
            "{:?}: FlashLite must show MAGIC PI occupancy, got {fl_only:?}",
            ft.key()
        );
        assert!(
            nu_only.contains(&"ctrl_request"),
            "{:?}: NUMA must show its fixed-latency controller, got {nu_only:?}",
            nt.key()
        );
        assert!(
            !kinds_only_in(nt, ft).contains(&"pi_request"),
            "MAGIC legs must never appear on the NUMA side"
        );
    }
}
