//! The paper's methodological bedrock: "the same application binaries are
//! used for all platforms". In this workspace that means a program's op
//! stream must be bit-identical no matter which platform consumes it —
//! these tests run every workload on radically different platforms and
//! assert identical per-node op counts.

use flashsim::platform::{MemModel, Sim, Study};
use flashsim::runner::run_once;
use flashsim::workloads::{Fft, FftBlocking, Lu, Ocean, ProblemScale, Radix, SnCase, Snbench};
use flashsim_isa::Program;

fn op_counts(study: &Study, prog: &dyn Program, nodes: u32) -> Vec<Vec<u64>> {
    let mut all = Vec::new();
    all.push(run_once(study.hardware(nodes), prog).ops_per_node);
    for sim in [Sim::SimosMipsy(300), Sim::SimosMxs, Sim::SoloMipsy(150)] {
        all.push(run_once(study.sim(sim, nodes, MemModel::FlashLite), prog).ops_per_node);
    }
    all.push(run_once(study.sim(Sim::SimosMipsy(225), nodes, MemModel::Numa), prog).ops_per_node);
    all
}

fn assert_same_binary(prog: &dyn Program, nodes: u32) {
    let study = Study::scaled();
    let counts = op_counts(&study, prog, nodes);
    for c in &counts[1..] {
        assert_eq!(
            c,
            &counts[0],
            "{}: op streams differ across platforms",
            prog.name()
        );
    }
    assert!(counts[0].iter().all(|n| *n > 0), "empty node stream");
}

#[test]
fn fft_is_the_same_binary_everywhere() {
    assert_same_binary(&Fft::sized(ProblemScale::Tiny, 2, FftBlocking::Tlb), 2);
}

#[test]
fn radix_is_the_same_binary_everywhere() {
    assert_same_binary(&Radix::tuned(ProblemScale::Tiny, 2), 2);
}

#[test]
fn lu_is_the_same_binary_everywhere() {
    assert_same_binary(&Lu::sized(ProblemScale::Tiny, 2), 2);
}

#[test]
fn ocean_is_the_same_binary_everywhere() {
    assert_same_binary(&Ocean::sized(ProblemScale::Tiny, 2), 2);
}

#[test]
fn snbench_is_the_same_binary_everywhere() {
    for case in SnCase::all() {
        assert_same_binary(&Snbench::new(case, 64 * 1024), Snbench::NODES as u32);
    }
}

#[test]
fn runs_are_deterministic() {
    let study = Study::scaled();
    let prog = Radix::tuned(ProblemScale::Tiny, 4);
    let a = run_once(study.hardware(4), &prog);
    let b = run_once(study.hardware(4), &prog);
    assert_eq!(a.total_time, b.total_time);
    assert_eq!(a.parallel_time, b.parallel_time);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.barrier_releases, b.barrier_releases);
}
