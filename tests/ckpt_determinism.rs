//! The checkpoint/restore correctness contract: snapshotting a machine at
//! a barrier release and restoring it — even into a freshly built machine
//! in another process — must be *invisible* in every simulated
//! observable. A run that checkpoints at every barrier finishes
//! byte-identical to one that never checkpoints; a run restored from any
//! of those checkpoints finishes byte-identical too, on every platform of
//! the study, under both scheduling policies, with an active fault plan,
//! and across stats, accounting, telemetry JSONL, and span JSONL. A
//! checkpoint that has been corrupted or truncated must be rejected with
//! a structured error, never mis-restored.

use flashsim::engine::ckpt::{self, CkptError};
use flashsim::engine::{FaultPlan, SpanPlan, Time, TimeDelta};
use flashsim::machine::{
    run_program, Machine, MachineConfig, RestoreError, RunResult, SchedPolicy,
};
use flashsim::platform::{MemModel, Sim, Study};
use flashsim::workloads::{Fft, FftBlocking, ProblemScale};
use std::sync::{Arc, Mutex};

/// Every platform family of the study at 2 nodes: the gold-standard
/// hardware plus each simulator × memory-system combination.
fn platforms(study: &Study, nodes: u32) -> Vec<(String, MachineConfig)> {
    let mut out = vec![("hardware".to_owned(), study.hardware(nodes))];
    for sim in [Sim::SimosMipsy(150), Sim::SoloMipsy(150), Sim::SimosMxs] {
        for mem in [MemModel::FlashLite, MemModel::Numa] {
            let cfg = study.sim(sim, nodes, mem);
            out.push((cfg.label(), cfg));
        }
    }
    out
}

/// Attaches every optional observer so byte-identity covers stats,
/// accounting, telemetry, and spans at once.
fn observed(mut cfg: MachineConfig) -> MachineConfig {
    cfg.profile = true;
    cfg.telemetry = Some(TimeDelta::from_ns(500));
    cfg.spans = Some(SpanPlan::all(7));
    cfg
}

fn prog() -> Fft {
    Fft::sized(ProblemScale::Tiny, 2, FftBlocking::Cache)
}

/// Runs with a checkpoint sink attached, returning the result and every
/// `(seq, text)` checkpoint emitted.
fn run_with_ckpts(cfg: MachineConfig, program: &Fft) -> (RunResult, Vec<(u64, String)>) {
    let ckpts: Arc<Mutex<Vec<(u64, String)>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&ckpts);
    let mut m = Machine::new(cfg, program).expect("machine builds");
    m.attach_ckpt_sink(Box::new(move |seq, _at: Time, text: &str| {
        sink.lock().expect("sink lock").push((seq, text.to_owned()));
    }));
    let result = m.run().expect("instrumented run completes");
    drop(m);
    let ckpts = Arc::try_unwrap(ckpts)
        .expect("sink dropped")
        .into_inner()
        .expect("lock");
    (result, ckpts)
}

/// Asserts every simulated observable of two runs is byte-identical.
fn assert_identical(label: &str, a: &RunResult, b: &RunResult) {
    assert_eq!(a.total_time, b.total_time, "{label}: total time");
    assert_eq!(a.parallel_time, b.parallel_time, "{label}: parallel time");
    assert_eq!(a.ops_per_node, b.ops_per_node, "{label}: per-node ops");
    assert_eq!(
        a.barrier_releases, b.barrier_releases,
        "{label}: barrier releases"
    );
    assert_eq!(
        a.stats.to_json(),
        b.stats.to_json(),
        "{label}: stats JSON must be byte-identical"
    );
    match (&a.accounting, &b.accounting) {
        (None, None) => {}
        (Some(x), Some(y)) => {
            assert_eq!(x.to_json(), y.to_json(), "{label}: accounting JSON")
        }
        _ => panic!("{label}: one run profiled, the other not"),
    }
    match (&a.telemetry, &b.telemetry) {
        (None, None) => {}
        (Some(x), Some(y)) => {
            assert_eq!(x.to_jsonl(), y.to_jsonl(), "{label}: telemetry JSONL")
        }
        _ => panic!("{label}: one run sampled telemetry, the other not"),
    }
    match (&a.spans, &b.spans) {
        (None, None) => {}
        (Some(x), Some(y)) => {
            assert_eq!(x.to_jsonl(), y.to_jsonl(), "{label}: span JSONL")
        }
        _ => panic!("{label}: one run traced spans, the other not"),
    }
}

#[test]
fn snapshotting_at_every_barrier_changes_nothing_on_any_platform() {
    let study = Study::scaled();
    let program = prog();
    for (label, cfg) in platforms(&study, 2) {
        let straight = run_program(observed(cfg.clone()), &program).expect("straight run");
        let (instrumented, ckpts) = run_with_ckpts(observed(cfg), &program);
        assert!(
            ckpts.len() >= 2,
            "{label}: multi-barrier FFT must checkpoint repeatedly"
        );
        assert_identical(&label, &straight, &instrumented);
    }
}

#[test]
fn restore_from_every_barrier_is_byte_identical_on_every_platform() {
    let study = Study::scaled();
    let program = prog();
    for (label, cfg) in platforms(&study, 2) {
        let (straight, ckpts) = run_with_ckpts(observed(cfg.clone()), &program);
        for (seq, text) in &ckpts {
            let mut m = Machine::restore(observed(cfg.clone()), &program, text)
                .unwrap_or_else(|e| panic!("{label}: restore ckpt {seq}: {e}"));
            let resumed = m.run().expect("resumed run completes");
            assert_identical(&format!("{label} ckpt {seq}"), &straight, &resumed);
        }
    }
}

#[test]
fn batched_restore_still_matches_reference_policy() {
    let study = Study::scaled();
    let program = prog();
    let base = study.sim(Sim::SimosMipsy(150), 2, MemModel::FlashLite);
    let mut reference = base.clone();
    reference.sched = SchedPolicy::Reference;
    let ref_straight = run_program(observed(reference), &program).expect("reference run");
    let (_, ckpts) = run_with_ckpts(observed(base.clone()), &program);
    let mid = &ckpts[ckpts.len() / 2];
    let mut m = Machine::restore(observed(base), &program, &mid.1).expect("batched ckpt restores");
    let resumed = m.run().expect("resumed batched run completes");
    // The sched-equivalence contract must survive a checkpoint cycle:
    // a Batched run restored mid-flight still lands exactly on the
    // Reference policy's numbers.
    assert_identical("batched-restore vs reference", &ref_straight, &resumed);
}

#[test]
fn restore_under_active_fault_plan_preserves_the_fault_schedule() {
    let study = Study::scaled();
    let program = prog();
    let mut cfg = study.sim(Sim::SimosMipsy(150), 2, MemModel::FlashLite);
    cfg.faults = Some(FaultPlan {
        seed: 0xFA117,
        latency_prob: 0.5,
        latency_spread: 1.0,
        ..FaultPlan::default()
    });
    let (straight, ckpts) = run_with_ckpts(cfg.clone(), &program);
    assert!(
        straight.stats.get_or_zero("fault.perturbed") > 0.0,
        "fault plan must actually perturb the run"
    );
    for (seq, text) in &ckpts {
        let mut m = Machine::restore(cfg.clone(), &program, text).expect("faulted restore");
        let resumed = m.run().expect("resumed faulted run completes");
        assert_identical(&format!("faulted ckpt {seq}"), &straight, &resumed);
    }
    // A checkpoint from the faulted run must refuse to restore into a
    // fault-free config: the fault plan is part of the run's identity.
    let mut clean = study.sim(Sim::SimosMipsy(150), 2, MemModel::FlashLite);
    clean.faults = None;
    let err = Machine::restore(clean, &program, &ckpts[0].1).expect_err("wrong fault plan");
    assert!(
        matches!(&err, RestoreError::Ckpt(CkptError::ManifestMismatch { .. })),
        "got {err}"
    );
}

#[test]
fn corrupted_and_truncated_checkpoints_are_rejected_structurally() {
    let study = Study::scaled();
    let program = prog();
    let cfg = study.sim(Sim::SimosMipsy(150), 2, MemModel::FlashLite);
    let (_, ckpts) = run_with_ckpts(cfg.clone(), &program);
    let good = &ckpts[0].1;
    ckpt::validate(good).expect("pristine checkpoint validates");

    // Truncation anywhere — including mid-line — fails closed.
    for frac in [4, 2] {
        let cut = &good[..good.len() / frac];
        let err = ckpt::validate(cut).expect_err("truncated checkpoint");
        assert!(
            matches!(err, CkptError::Truncated | CkptError::BadMagic { .. }),
            "truncation at 1/{frac} gave {err}"
        );
        assert!(Machine::restore(cfg.clone(), &program, cut).is_err());
    }

    // A single flipped payload byte fails the checksum.
    let corrupt = good.replacen("consumed=", "consumed=7", 1);
    assert!(matches!(
        ckpt::validate(&corrupt),
        Err(CkptError::ChecksumMismatch { .. })
    ));
    let err = Machine::restore(cfg.clone(), &program, &corrupt).expect_err("corrupt");
    assert!(matches!(
        err,
        RestoreError::Ckpt(CkptError::ChecksumMismatch { .. })
    ));

    // A future format version is recognized as such, not parsed further,
    // and arbitrary garbage fails closed too.
    assert!(matches!(
        ckpt::validate(&good.replacen("flashsim-ckpt-v1", "flashsim-ckpt-v9", 1)),
        Err(CkptError::BadMagic { .. })
    ));
    assert!(ckpt::validate("not-a-checkpoint\nkey=1\n").is_err());
}
