//! End-to-end smoke test of the figure machinery at tiny problem size:
//! the full 7-simulator × 4-application matrix runs, produces a complete
//! grid, and renders/serializes cleanly.

use flashsim::figures::{apps_tuned, RelativeFigure, RelativePoint};
use flashsim::platform::{MemModel, Sim, Study};
use flashsim::report::{relative_to_csv, render_relative};
use flashsim::runner::{parallel_map, relative_time, run_hardware, run_once};
use flashsim::workloads::ProblemScale;
use std::sync::Arc;

/// Builds a Figure-2-shaped grid at tiny scale (the figures crate's own
/// functions are pinned to the experiment problem sizes; this test drives
/// the same machinery through the public API).
fn tiny_grid() -> RelativeFigure {
    let study = Study::scaled();
    let apps = apps_tuned(ProblemScale::Tiny, 1);
    let hw: Vec<_> = apps
        .iter()
        .map(|(_, p)| run_hardware(&study, 1, p.as_ref()).parallel_time)
        .collect();

    let mut jobs = Vec::new();
    for (idx, (_, prog)) in apps.iter().enumerate() {
        for sim in Sim::figure_order() {
            jobs.push((idx, sim, Arc::clone(prog)));
        }
    }
    let points = parallel_map(jobs, |(idx, sim, prog)| {
        let cfg = study.sim(sim, 1, MemModel::FlashLite);
        let t = run_once(cfg, prog.as_ref()).parallel_time;
        RelativePoint::measured(apps[idx].0, sim.label(), relative_time(t, hw[idx]))
    });
    RelativeFigure {
        title: "tiny smoke grid".into(),
        nodes: 1,
        points,
    }
}

#[test]
fn full_matrix_produces_a_complete_grid() {
    let fig = tiny_grid();
    assert_eq!(fig.points.len(), 7 * 4, "7 simulators x 4 applications");
    for p in &fig.points {
        assert!(
            p.relative > 0.05 && p.relative < 20.0,
            "{} on {}: implausible relative {:.3}",
            p.sim,
            p.app,
            p.relative
        );
    }
    // Every (app, sim) cell is present exactly once.
    for app in ["FFT", "Radix-Sort", "LU", "Ocean"] {
        for sim in Sim::figure_order() {
            assert!(
                fig.get(app, &sim.label()).is_some(),
                "missing cell ({app}, {})",
                sim.label()
            );
        }
    }

    // Rendering and CSV serialization cover the whole grid.
    let rendered = render_relative(&fig);
    assert_eq!(rendered.lines().count(), 2 + 1 + 7);
    let csv = relative_to_csv(&fig);
    assert_eq!(csv.lines().count(), 1 + 28);
}

#[test]
fn clock_scaling_is_visible_in_the_grid() {
    let fig = tiny_grid();
    for app in ["FFT", "Radix-Sort", "LU", "Ocean"] {
        let r150 = fig.get(app, "SimOS-Mipsy 150MHz").unwrap();
        let r300 = fig.get(app, "SimOS-Mipsy 300MHz").unwrap();
        assert!(
            r300 < r150,
            "{app}: 300MHz ({r300:.2}) must predict faster than 150MHz ({r150:.2})"
        );
    }
}

#[test]
fn full_size_geometry_constructs_and_runs() {
    // The --full experiment path: Table-1 geometry (2MB L2, 64-entry TLB,
    // 256MB/node). A microbenchmark suffices to verify the machinery;
    // full Table-2 workloads are exercised by the (slow) --full binaries.
    let study = Study::full();
    let probe = flashsim::workloads::RestartProbe::new(20_000);
    let r = run_once(study.hardware(1), &probe);
    assert!(r.parallel_time.as_ns() > 0);
    let cal_geometry = study.geometry;
    assert_eq!(cal_geometry.tlb_entries, 64);
    assert_eq!(cal_geometry.l2.bytes, 2 * 1024 * 1024);
}
