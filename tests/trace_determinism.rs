//! Integration tests for the observability loop: flight-recorder streams
//! are byte-identical across identically-seeded runs, and the divergence
//! differ pinpoints where two platforms part ways on the same workload.

use flashsim::diverge::diff_traces;
use flashsim::engine::{CategoryMask, Trace, Tracer};
use flashsim::machine::{Machine, MachineConfig};
use flashsim::platform::{MemModel, Sim, Study};
use flashsim::workloads::micro::{SnCase, Snbench};
use flashsim_isa::Program;

fn traced(cfg: MachineConfig, prog: &dyn Program) -> Trace {
    let tracer = Tracer::new(1 << 18, CategoryMask::ALL);
    let mut machine = Machine::new(cfg, prog).expect("valid configuration");
    machine.attach_tracer(tracer.clone());
    machine.run().expect("traced run completes");
    tracer.snapshot()
}

#[test]
fn identically_seeded_runs_trace_byte_identically() {
    let study = Study::scaled();
    let bench = Snbench::new(SnCase::all()[2], study.geometry.l2.bytes);
    let nodes = Snbench::NODES as u32;
    let a = traced(study.hardware(nodes), &bench);
    let b = traced(study.hardware(nodes), &bench);
    assert!(!a.events.is_empty(), "hardware run must record events");
    assert_eq!(
        a, b,
        "identically-seeded runs must produce identical streams"
    );
    assert_eq!(
        a.to_chrome_json(),
        b.to_chrome_json(),
        "exported traces must be byte-identical"
    );
    assert!(diff_traces(&a, &b).identical());
}

#[test]
fn differ_pinpoints_hardware_vs_simulator_divergence() {
    let study = Study::scaled();
    let bench = Snbench::new(SnCase::all()[2], study.geometry.l2.bytes);
    let nodes = Snbench::NODES as u32;
    let hw = traced(study.hardware(nodes), &bench);
    let sim = traced(
        study.sim(Sim::SimosMipsy(150), nodes, MemModel::FlashLite),
        &bench,
    );
    let report = diff_traces(&hw, &sim);
    assert!(
        report.first.is_some(),
        "different processor models must diverge somewhere"
    );
    let text = report.render("hardware", "simos-mipsy-150");
    assert!(text.contains("first divergence at event index"));
    assert!(text.contains("per-category event counts"));
}
