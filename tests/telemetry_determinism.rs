//! Integration tests for sim-time telemetry: identically seeded runs
//! export byte-identical `flashsim-telemetry-v1` JSONL on every
//! platform, the stable export is identical between the `Batched` and
//! `Reference` scheduling policies (scheduler-internal metrics are
//! volatile and excluded), and every occupancy integrator conserves
//! exactly in integer picoseconds.

use flashsim::engine::telemetry::validate_jsonl;
use flashsim::engine::TimeDelta;
use flashsim::machine::{run_program, MachineConfig, RunResult, SchedPolicy};
use flashsim::platform::{MemModel, Sim, Study};
use flashsim::workloads::{Fft, FftBlocking, ProblemScale};

fn fft(threads: usize) -> Fft {
    Fft::sized(ProblemScale::Tiny, threads, FftBlocking::Cache)
}

/// Every platform of the study, at a small node count.
fn platforms(study: &Study, nodes: u32) -> Vec<(String, MachineConfig)> {
    let mut out = vec![("hardware".to_owned(), study.hardware(nodes))];
    for sim in [Sim::SimosMipsy(150), Sim::SoloMipsy(150), Sim::SimosMxs] {
        for mem in [MemModel::FlashLite, MemModel::Numa] {
            let cfg = study.sim(sim, nodes, mem);
            out.push((cfg.label(), cfg));
        }
    }
    out
}

fn run_with_telemetry(mut cfg: MachineConfig) -> RunResult {
    cfg.telemetry = Some(TimeDelta::from_us(1));
    run_program(cfg, &fft(2)).expect("telemetry run completes")
}

#[test]
fn identically_seeded_telemetry_is_byte_identical_on_every_platform() {
    let study = Study::scaled();
    for (label, cfg) in platforms(&study, 2) {
        let a = run_with_telemetry(cfg.clone());
        let b = run_with_telemetry(cfg);
        let a = a.telemetry.expect("telemetry was attached");
        let b = b.telemetry.expect("telemetry was attached");
        assert_eq!(
            a.to_jsonl(),
            b.to_jsonl(),
            "{label}: telemetry JSONL must be byte-identical across reruns"
        );
        assert_eq!(
            a.to_prometheus(),
            b.to_prometheus(),
            "{label}: Prometheus export must be byte-identical across reruns"
        );
        validate_jsonl(&a.to_jsonl())
            .unwrap_or_else(|e| panic!("{label}: exported JSONL fails validation: {e}"));
    }
}

#[test]
fn batched_and_reference_schedules_export_identical_telemetry() {
    // Scheduler-internal metrics (batch counts, heap occupancy) are
    // policy-shaped by design and registered volatile; everything in the
    // *stable* export samples policy-invariant machine state, so the two
    // bit-identical schedules must serialize identically.
    let study = Study::scaled();
    for (label, cfg) in platforms(&study, 2) {
        let mut batched = cfg.clone();
        batched.sched = SchedPolicy::Batched;
        let mut reference = cfg;
        reference.sched = SchedPolicy::Reference;
        let a = run_with_telemetry(batched)
            .telemetry
            .expect("telemetry was attached");
        let b = run_with_telemetry(reference)
            .telemetry
            .expect("telemetry was attached");
        assert_eq!(
            a.to_jsonl(),
            b.to_jsonl(),
            "{label}: stable telemetry export must not depend on the scheduling policy"
        );
    }
}

#[test]
fn occupancy_integrators_conserve_exactly_on_every_platform() {
    let study = Study::scaled();
    for (label, cfg) in platforms(&study, 2) {
        let series = run_with_telemetry(cfg)
            .telemetry
            .expect("telemetry was attached");
        assert!(
            series.conserved(),
            "{label}: per-bucket sums must equal each metric's integer-ps total"
        );
        assert!(
            !series.metrics.is_empty(),
            "{label}: machine layers registered no metrics"
        );
    }
}

#[test]
fn manifest_records_scheduling_policy_and_fault_plan() {
    let study = Study::scaled();
    let mut cfg = study.sim(Sim::SimosMipsy(150), 2, MemModel::FlashLite);
    cfg.sched = SchedPolicy::Reference;
    let r = run_program(cfg, &fft(2)).expect("run completes");
    assert_eq!(r.manifest.sched, "reference");
    assert_eq!(r.manifest.faults, None);
    let json = r.manifest.to_json();
    assert!(json.contains("\"sched\":\"reference\""), "json: {json}");
    assert!(json.contains("\"faults\":null"), "json: {json}");
}
