//! The live-stream determinism contract (DESIGN.md §3.17): the
//! deterministic events of a `flashsim-stream-v1` stream — `start`,
//! closed `bucket`s, `ckpt` markers, and the `end` terminator — are a
//! pure function of the run's provenance. Rerunning the same
//! configuration reproduces them byte for byte on every platform of
//! the study; `SchedPolicy::Batched` reproduces `Reference` exactly;
//! and a run restored from any checkpoint *continues* the stream so
//! that trimmed-prefix + continuation is byte-identical to the
//! uninterrupted stream and still validates as one gapless chain.
//! Advisory `progress` events are wall-clock-driven and excluded from
//! every comparison here, exactly as the protocol specifies.

use flashsim::engine::stream::{self, MemorySink};
use flashsim::engine::{SpanPlan, Time, TimeDelta};
use flashsim::machine::{Machine, MachineConfig, SchedPolicy};
use flashsim::platform::{MemModel, Sim, Study};
use flashsim::workloads::{Fft, FftBlocking, ProblemScale};
use std::sync::{Arc, Mutex};

/// Every platform family of the study at 2 nodes.
fn platforms(study: &Study, nodes: u32) -> Vec<(String, MachineConfig)> {
    let mut out = vec![("hardware".to_owned(), study.hardware(nodes))];
    for sim in [Sim::SimosMipsy(150), Sim::SoloMipsy(150), Sim::SimosMxs] {
        for mem in [MemModel::FlashLite, MemModel::Numa] {
            let cfg = study.sim(sim, nodes, mem);
            out.push((cfg.label(), cfg));
        }
    }
    out
}

/// Attaches telemetry + profiling so the stream carries bucket values
/// and per-class accounting deltas, plus spans to prove unrelated
/// observers do not perturb the stream.
fn observed(mut cfg: MachineConfig) -> MachineConfig {
    cfg.profile = true;
    cfg.telemetry = Some(TimeDelta::from_ns(500));
    cfg.spans = Some(SpanPlan::all(7));
    cfg
}

fn prog() -> Fft {
    Fft::sized(ProblemScale::Tiny, 2, FftBlocking::Cache)
}

/// Runs to completion with a memory stream sink attached, returning
/// the captured stream text.
fn run_streamed(cfg: MachineConfig, program: &Fft) -> String {
    let (text, _) = run_streamed_with_ckpts(cfg, program);
    text
}

/// Same, also capturing every `(seq, text)` checkpoint emitted.
fn run_streamed_with_ckpts(cfg: MachineConfig, program: &Fft) -> (String, Vec<(u64, String)>) {
    let (sink, buf) = MemorySink::new();
    let ckpts: Arc<Mutex<Vec<(u64, String)>>> = Arc::new(Mutex::new(Vec::new()));
    let csink = Arc::clone(&ckpts);
    let mut m = Machine::new(cfg, program).expect("machine builds");
    m.attach_stream_sink(Box::new(sink));
    m.attach_ckpt_sink(Box::new(move |seq, _at: Time, text: &str| {
        csink
            .lock()
            .expect("ckpt lock")
            .push((seq, text.to_owned()));
    }));
    m.run().expect("streamed run completes");
    drop(m);
    let text = buf.lock().expect("stream buffer").clone();
    let ckpts = Arc::try_unwrap(ckpts)
        .expect("ckpt sink dropped")
        .into_inner()
        .expect("lock");
    (text, ckpts)
}

#[test]
fn rerunning_reproduces_the_deterministic_events_on_every_platform() {
    let study = Study::scaled();
    let program = prog();
    for (label, cfg) in platforms(&study, 2) {
        let a = run_streamed(observed(cfg.clone()), &program);
        let b = run_streamed(observed(cfg), &program);
        stream::validate_jsonl(&a).unwrap_or_else(|e| panic!("{label}: stream invalid: {e}"));
        let da = stream::deterministic_lines(&a);
        let db = stream::deterministic_lines(&b);
        assert!(
            da.iter().any(|l| l.contains("\"ev\":\"bucket\"")),
            "{label}: a multi-barrier run must close buckets"
        );
        assert!(
            da.last().is_some_and(|l| l.contains("\"kind\":\"ok\"")),
            "{label}: stream must terminate ok"
        );
        assert_eq!(
            da, db,
            "{label}: rerun must reproduce the deterministic events byte for byte"
        );
        assert_eq!(
            stream::provenance_of(&a),
            stream::provenance_of(&b),
            "{label}: rerun must carry the same provenance hash"
        );
    }
}

#[test]
fn batched_policy_streams_identically_to_reference() {
    let study = Study::scaled();
    let program = prog();
    let batched = study.sim(Sim::SimosMipsy(150), 2, MemModel::FlashLite);
    let mut reference = batched.clone();
    reference.sched = SchedPolicy::Reference;
    let a = run_streamed(observed(batched), &program);
    let b = run_streamed(observed(reference), &program);
    // The start headers differ (they embed the policy key and the
    // provenance hash that includes it); every deterministic event
    // after them — bucket deltas, accounting deltas, the terminator —
    // must be byte-identical, because all of them are cut at barrier
    // releases where the sched-equivalence contract pins every total.
    assert_eq!(
        stream::deterministic_lines(&a),
        stream::deterministic_lines(&b),
        "Batched must stream the same closed buckets as Reference"
    );
    assert_ne!(
        stream::provenance_of(&a),
        stream::provenance_of(&b),
        "the two policies are distinct provenances (prefix checks never cross-compare them)"
    );
}

#[test]
fn restore_from_every_checkpoint_continues_the_stream_byte_identically() {
    let study = Study::scaled();
    let program = prog();
    for cfg in [
        study.hardware(2),
        study.sim(Sim::SimosMipsy(150), 2, MemModel::FlashLite),
    ] {
        let label = cfg.label();
        let (straight, ckpts) = run_streamed_with_ckpts(observed(cfg.clone()), &program);
        assert!(
            ckpts.len() >= 2,
            "{label}: multi-barrier FFT must checkpoint repeatedly"
        );
        for (seq, text) in &ckpts {
            let mut m = Machine::restore(observed(cfg.clone()), &program, text)
                .unwrap_or_else(|e| panic!("{label}: restore ckpt {seq}: {e}"));
            // What the journal does on resume: trim the dead run's file
            // to the prefix the checkpoint is consistent with, then let
            // the machine append to it.
            let prefix = stream::consistent_prefix(&straight, m.stream_position().0);
            let (sink, buf) = MemorySink::new();
            m.attach_stream_sink(Box::new(sink));
            // The journal re-attaches a checkpoint sink on resume, so
            // `ckpt` markers keep flowing after the splice; mirror that.
            m.attach_ckpt_sink(Box::new(|_, _: Time, _: &str| {}));
            m.run().expect("resumed run completes");
            drop(m);
            let spliced = format!("{prefix}{}", buf.lock().expect("buffer").clone());
            stream::validate_jsonl(&spliced).unwrap_or_else(|e| {
                panic!("{label} ckpt {seq}: spliced stream must validate as one gapless chain: {e}")
            });
            assert_eq!(
                stream::deterministic_lines(&spliced),
                stream::deterministic_lines(&straight),
                "{label} ckpt {seq}: trimmed prefix + continuation must equal the straight stream"
            );
        }
    }
}

#[test]
fn a_failed_run_terminates_its_stream_with_the_error_kind() {
    let study = Study::scaled();
    let program = prog();
    let mut cfg = observed(study.sim(Sim::SimosMipsy(150), 2, MemModel::FlashLite));
    cfg.watchdog.max_ops = Some(500); // far too small: the watchdog trips
    let (sink, buf) = MemorySink::new();
    let mut m = Machine::new(cfg, &program).expect("machine builds");
    m.attach_stream_sink(Box::new(sink));
    let err = m.run().expect_err("budget must trip");
    drop(m);
    let text = buf.lock().expect("buffer").clone();
    stream::validate_jsonl(&text).expect("failed run's stream still validates");
    let det = stream::deterministic_lines(&text);
    let last = det.last().expect("stream has a terminator");
    assert!(
        last.contains("\"ev\":\"end\"") && last.contains(&format!("\"kind\":\"{}\"", err.kind())),
        "terminator must carry the error kind {:?}, got {last}",
        err.kind()
    );
}
