//! Shape tests for the paper's qualitative findings. Absolute numbers are
//! not asserted (our substrate is a model, not the authors' testbed);
//! what must hold is who wins, in which direction, as the paper reports.
//! EXPERIMENTS.md records the quantitative comparison.

use flashsim::machine::CpuModel;
use flashsim::platform::{MemModel, Sim, Study};
use flashsim::runner::{run_once, speedup};
use flashsim::workloads::{Fft, FftBlocking, Ocean, ProblemScale, Radix};

/// §3.1.2: running the FFT with cache blocking instead of TLB blocking
/// hurts the *hardware* — the application fix the paper applies between
/// Figures 1 and 2.
#[test]
fn fft_tlb_blocking_beats_cache_blocking_on_hardware() {
    let study = Study::scaled();
    // The pathology needs the real dataset:TLB-reach ratio, so this test
    // runs at the scaled (not tiny) problem size.
    let cache = run_once(
        study.hardware(1),
        &Fft::sized(ProblemScale::Scaled, 1, FftBlocking::Cache),
    );
    let tlb = run_once(
        study.hardware(1),
        &Fft::sized(ProblemScale::Scaled, 1, FftBlocking::Tlb),
    );
    assert!(
        tlb.stats.get_or_zero("os.tlb_refills") < cache.stats.get_or_zero("os.tlb_refills"),
        "TLB blocking must reduce TLB misses: {} vs {}",
        tlb.stats.get_or_zero("os.tlb_refills"),
        cache.stats.get_or_zero("os.tlb_refills")
    );
}

/// §3.1.2: the traditional large radix causes pathological TLB misses;
/// reducing it helps the hardware (31% at paper scale).
#[test]
fn radix_reduction_cuts_tlb_misses_on_hardware() {
    let study = Study::scaled();
    let big = run_once(study.hardware(1), &Radix::untuned(ProblemScale::Tiny, 1));
    let small = run_once(study.hardware(1), &Radix::tuned(ProblemScale::Tiny, 1));
    let big_misses = big.stats.get_or_zero("os.tlb_refills");
    let small_misses = small.stats.get_or_zero("os.tlb_refills");
    assert!(
        small_misses * 2.0 < big_misses,
        "radix fix must cut TLB misses: {small_misses} vs {big_misses}"
    );
    assert!(small.parallel_time < big.parallel_time);
}

/// §3.1.2/Figure 3: Solo's page allocation wrecks uniprocessor Ocean
/// (conflict misses IRIX's page colouring avoids), so Solo *over*-predicts
/// Ocean's execution time relative to SimOS at the same clock.
#[test]
fn solo_overpredicts_uniprocessor_ocean() {
    let study = Study::scaled();
    let ocean = Ocean::sized(ProblemScale::Scaled, 1);
    let simos = run_once(
        study.sim(Sim::SimosMipsy(150), 1, MemModel::FlashLite),
        &ocean,
    );
    let solo = run_once(
        study.sim(Sim::SoloMipsy(150), 1, MemModel::FlashLite),
        &ocean,
    );
    let ratio = solo.parallel_time.ratio(simos.parallel_time);
    assert!(
        ratio > 1.3,
        "Solo-Ocean must suffer page-colouring conflicts (solo/simos = {ratio:.2})"
    );
    assert!(
        solo.stats.get_or_zero("l2.misses") > simos.stats.get_or_zero("l2.misses") * 1.5,
        "the damage must come from L2 conflict misses"
    );
}

/// §3.1.3 / Figure 3: the generic out-of-order MXS exploits more ILP than
/// the gold-standard R10000 on the same stream, predicting faster times.
#[test]
fn mxs_is_faster_than_the_gold_standard() {
    let study = Study::scaled();
    let radix = Radix::tuned(ProblemScale::Tiny, 1);
    let gold = run_once(study.hardware(1), &radix);
    let mut cfg = study.hardware(1);
    cfg.cpu = CpuModel::Mxs;
    let mxs = run_once(cfg, &radix);
    let ratio = gold.parallel_time.ratio(mxs.parallel_time);
    assert!(
        ratio > 1.1,
        "MXS must out-run the constrained R10000 (gold/mxs = {ratio:.2})"
    );
}

/// §2.3: Mipsy's clock-scaling trick is monotone — a faster clock always
/// shortens the simulated run, but by less than the clock ratio (memory
/// does not scale).
#[test]
fn mipsy_clock_scaling_is_monotone_and_sublinear() {
    let study = Study::scaled();
    let fft = Fft::sized(ProblemScale::Tiny, 1, FftBlocking::Tlb);
    let t150 = run_once(
        study.sim(Sim::SimosMipsy(150), 1, MemModel::FlashLite),
        &fft,
    )
    .parallel_time;
    let t225 = run_once(
        study.sim(Sim::SimosMipsy(225), 1, MemModel::FlashLite),
        &fft,
    )
    .parallel_time;
    let t300 = run_once(
        study.sim(Sim::SimosMipsy(300), 1, MemModel::FlashLite),
        &fft,
    )
    .parallel_time;
    assert!(t150 > t225 && t225 > t300, "faster clock, shorter run");
    let ratio = t150.ratio(t300);
    assert!(
        ratio < 2.0,
        "memory time must not scale with the clock (150/300 = {ratio:.2})"
    );
}

/// §3.3 / Figure 7: on the unplaced-Radix hotspot, the latency-only NUMA
/// model predicts much better speedup than FlashLite, whose controller
/// occupancy captures the bottleneck.
#[test]
fn numa_misses_the_hotspot_flashlite_catches() {
    let study = Study::scaled();
    let p = 8u32;
    let uni = Radix::unplaced(ProblemScale::Tiny, 1);
    let par = Radix::unplaced(ProblemScale::Tiny, p as usize);

    let sim = Sim::SimosMipsy(225);
    let fl_1 = run_once(study.sim(sim, 1, MemModel::FlashLite), &uni).parallel_time;
    let fl_p = run_once(study.sim(sim, p, MemModel::FlashLite), &par).parallel_time;
    let numa_1 = run_once(study.sim(sim, 1, MemModel::Numa), &uni).parallel_time;
    let numa_p = run_once(study.sim(sim, p, MemModel::Numa), &par).parallel_time;

    let fl_speedup = speedup(fl_1, fl_p);
    let numa_speedup = speedup(numa_1, numa_p);
    assert!(
        numa_speedup > fl_speedup * 1.5,
        "NUMA must over-predict hotspot speedup (numa {numa_speedup:.2} vs flashlite {fl_speedup:.2})"
    );
}

/// Figure 5's warning: over-clocking Mipsy to 300 MHz manufactures
/// contention and under-predicts multiprocessor speedup relative to the
/// 150 MHz model.
#[test]
fn overclocked_mipsy_underpredicts_speedup() {
    let study = Study::scaled();
    let p = 8u32;
    let uni = Fft::sized(ProblemScale::Tiny, 1, FftBlocking::Tlb);
    let par = Fft::sized(ProblemScale::Tiny, p as usize, FftBlocking::Tlb);

    let s150 = {
        let t1 = run_once(
            study.sim(Sim::SimosMipsy(150), 1, MemModel::FlashLite),
            &uni,
        )
        .parallel_time;
        let tp = run_once(
            study.sim(Sim::SimosMipsy(150), p, MemModel::FlashLite),
            &par,
        )
        .parallel_time;
        speedup(t1, tp)
    };
    let s300 = {
        let t1 = run_once(
            study.sim(Sim::SimosMipsy(300), 1, MemModel::FlashLite),
            &uni,
        )
        .parallel_time;
        let tp = run_once(
            study.sim(Sim::SimosMipsy(300), p, MemModel::FlashLite),
            &par,
        )
        .parallel_time;
        speedup(t1, tp)
    };
    assert!(
        s300 < s150,
        "300MHz Mipsy must under-predict speedup (s300={s300:.2} vs s150={s150:.2})"
    );
}
