#!/bin/sh
# Full offline CI gate: build, test, formatting, lints.
# Run from anywhere inside the repository; no network access required.
set -eu

cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test -q =="
cargo test -q --workspace

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== all checks passed =="
