#!/bin/sh
# Full offline CI gate: build, test, formatting, lints.
# Run from anywhere inside the repository; no network access required.
set -eu

cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test -q =="
cargo test -q --workspace

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== panic/unwrap gate (library crates) =="
# Library code must fail structurally (SimError), not panic: reject
# panic!/.unwrap() outside #[cfg(test)] regions. The bench crate (CLI
# tools), test modules, comments, and lines annotated `gate: allow`
# (documented programming-error contracts) are exempt.
violations=$(find crates -name '*.rs' -path '*/src/*' ! -path 'crates/bench/*' \
    -exec awk '
        /#\[cfg\(test\)\]/ { intest = 1 }
        intest { next }
        { stripped = $0; sub(/^[ \t]+/, "", stripped) }
        stripped ~ /^\/\// { next }
        /gate: allow/ { next }
        /panic!\(|\.unwrap\(\)/ { print FILENAME ":" FNR ": " $0 }
    ' {} +)
if [ -n "$violations" ]; then
    echo "library code must return SimError instead of panicking:"
    echo "$violations"
    exit 1
fi

echo "== chaos smoke (fault-injection survival) =="
# 20 seeded fault plans x all platforms; exits nonzero if any cell
# panics or the sweep hangs past the watchdog.
cargo run --release -q -p flashsim-bench --bin chaos

echo "== profile smoke (cycle-accounting conservation) =="
# GoldenMachine + one simulator over FFT with the accounting profiler
# attached; the binary itself verifies conservation (per-node per-class
# sums equal total cycles on both platforms) and that the attribution's
# per-class contributions sum to the total relative error, exiting
# nonzero on any violation.
cargo run --release -q -p flashsim-bench --bin profile

echo "== all checks passed =="
