#!/bin/sh
# Full offline CI gate: build, test, formatting, lints.
# Run from anywhere inside the repository; no network access required.
set -eu

cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test -q =="
cargo test -q --workspace

echo "== scheduler equivalence worker sweep (1, 2, host parallelism) =="
# The parallel policy must be byte-identical to the reference
# interleaving at *every* worker count, not just the suite's default of
# 2: one worker (pure fork overhead, no concurrency), two (the smallest
# real interleaving), and 0 = one per available host core.
for w in 1 2 0; do
    echo "-- FLASHSIM_EQ_WORKERS=$w --"
    FLASHSIM_EQ_WORKERS=$w cargo test -q --test sched_equivalence
done

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== panic/unwrap/expect/unreachable + unsafe-concurrency gate (library crates) =="
# Library code must fail structurally (SimError), not panic: reject
# panic!/.unwrap()/.expect(/unreachable! outside #[cfg(test)] regions.
# The parallel scheduler also makes `static mut` and hand-asserted
# `unsafe impl Send/Sync` load-bearing hazards, so those are rejected
# outright — cross-thread sharing must go through the safe primitives.
# The bench crate (CLI tools), test modules, comments, and sites
# annotated `gate: allow` — same line or the comment line directly above
# (documented programming-error contracts) — are exempt.
violations=$(find crates -name '*.rs' -path '*/src/*' ! -path 'crates/bench/*' \
    -exec awk '
        FNR == 1 { intest = 0; skipnext = 0 }
        /#\[cfg\(test\)\]/ { intest = 1 }
        intest { next }
        { stripped = $0; sub(/^[ \t]+/, "", stripped) }
        stripped ~ /^\/\// { if ($0 ~ /gate: allow/) skipnext = 1; next }
        /gate: allow/ { next }
        skipnext { skipnext = 0; next }
        /panic!\(|\.unwrap\(\)|\.expect\(|unreachable!\(/ { print FILENAME ":" FNR ": " $0 }
        /static[ \t]+mut[ \t]|unsafe[ \t]+impl/ { print FILENAME ":" FNR ": " $0 }
    ' {} +)
if [ -n "$violations" ]; then
    echo "library code must return SimError instead of panicking, and must"
    echo "not smuggle shared mutable state past the compiler:"
    echo "$violations"
    exit 1
fi

echo "== simspeed perf gate (events/sec vs committed baseline) =="
# Best-of-N snbench throughput per platform — serial rows plus the
# parallel scheduling policy under 4 host workers — emitted as JSON,
# schema-validated, and compared against
# results/BENCH_simspeed_baseline.json: any row more than 30% below its
# baseline events/sec fails the gate. These configs leave telemetry
# compiled in but disabled, so the comparison also asserts the
# telemetry disabled path (one branch per probe site) has not regressed
# the hot loop; the parallel rows additionally gate the fork/join
# round machinery's overhead. Wall-clock numbers are host-dependent and
# noisy — on a loaded or much slower machine, skip with
# FLASHSIM_SKIP_PERF=1 (the benchmark still runs as a smoke test; only
# the comparison is skipped).
cargo build --release -q -p flashsim-bench --bin simspeed
perf_json="$(mktemp)"
if [ "${FLASHSIM_SKIP_PERF:-0}" = "1" ]; then
    ./target/release/simspeed --app snbench --iters 3 --workers 4 --json "$perf_json" > /dev/null
    ./target/release/simspeed --validate "$perf_json"
    echo "FLASHSIM_SKIP_PERF=1: baseline comparison skipped"
else
    ./target/release/simspeed --app snbench --iters 10 --workers 4 --json "$perf_json" \
        --baseline results/BENCH_simspeed_baseline.json --tolerance 0.30 > /dev/null
    ./target/release/simspeed --validate "$perf_json"
    echo "within 30% of committed baseline"
fi
rm -f "$perf_json"

echo "== hostprof gate (flashsim-hostprof-v1 schema + reconciliation + overhead) =="
# The host-time self-profiler must (a) emit schema-valid
# flashsim-hostprof-v1 JSONL — the binary self-validates the export
# through engine::hostprof::validate_jsonl before writing and exits
# nonzero on a bad report; (b) reconcile every per-phase table against
# the row's measured wall time within 1% (boundary tiling; a failed
# reconciliation prints `SKEW` instead of `reconciled`); and (c) cost
# at most 5% of throughput when attached: `--hostprof-overhead 0.05`
# interleaves detached/attached runs of the parallel policy pair by
# pair on every platform (so host frequency drift hits both sides
# equally) and compares best-of events/sec. The overhead half is
# wall-clock and host-dependent, so FLASHSIM_SKIP_PERF=1 skips it —
# the schema and reconciliation gates still run.
hp_out="$(mktemp)"
hp_jsonl="$(mktemp)"
./target/release/simspeed --app snbench --iters 1 --workers 2 \
    --hostprof --hostprof-jsonl "$hp_jsonl" > "$hp_out"
grep -q '"schema":"flashsim-hostprof-v1"' "$hp_jsonl" \
    || { echo "FAIL: hostprof export missing the v1 schema header"; exit 1; }
grep -q "reconciled" "$hp_out" \
    || { echo "FAIL: no reconciled hostprof table in simspeed output"; exit 1; }
if grep -q "SKEW" "$hp_out"; then
    echo "FAIL: hostprof phase sum does not reconcile with wall time:"
    grep "SKEW" "$hp_out"
    exit 1
fi
if [ "${FLASHSIM_SKIP_PERF:-0}" = "1" ]; then
    echo "schema + reconciliation ok; FLASHSIM_SKIP_PERF=1: overhead comparison skipped"
else
    ./target/release/simspeed --app snbench --iters 8 --workers 2 \
        --hostprof-overhead 0.05 > /dev/null
    echo "schema + reconciliation ok; hostprof overhead within 5% of detached"
fi
rm -f "$hp_out" "$hp_jsonl"

echo "== chaos smoke (fault-injection survival) =="
# 20 seeded fault plans x all platforms; exits nonzero if any cell
# panics or the sweep hangs past the watchdog.
cargo run --release -q -p flashsim-bench --bin chaos

echo "== kill-and-resume smoke (crash-consistent journal + ckpt schema) =="
# Runs a journaled multi-barrier matrix straight, re-runs it while
# hard-killing the process (exit 137, no destructors) at a seeded
# checkpoint count, resumes to convergence, and byte-compares every
# cell's artifacts against the straight run. Every flashsim-ckpt-v1
# file left on disk is then structurally re-validated through the
# standalone --validate-ckpt entry point (the same one external
# consumers get). Exits nonzero on any divergence or invalid file.
kr_dir="$(mktemp -d)"
cargo run --release -q -p flashsim-bench --bin chaos -- \
    --kill-resume --kills 1 --dir "$kr_dir" > /dev/null
cargo run --release -q -p flashsim-bench --bin chaos -- \
    --validate-ckpt "$kr_dir/killed" > /dev/null
echo "kill-and-resume converged byte-identically; checkpoints validate"

echo "== stream smoke (flashsim-stream-v1 validation + prefix stability) =="
# Every live stream the kill-resume matrix produced — the straight run's,
# the killed-then-resumed run's, and the torn mid-kill snapshots — must
# validate against the full stream contract, and files sharing a
# provenance hash must be prefix-stable over their deterministic events.
# A partial report must also stitch from a torn snapshot (the post-mortem
# view of a crashed cell); when no kill landed mid-cell this attempt, the
# report reads a finished stream instead.
stream_files="$(ls "$kr_dir"/straight/cell*.stream "$kr_dir"/killed/cell*.stream \
    "$kr_dir"/killed/cell*.stream.killed 2>/dev/null)"
[ -n "$stream_files" ] || { echo "FAIL: kill-resume matrix produced no stream files"; exit 1; }
# shellcheck disable=SC2086
cargo run --release -q -p flashsim-bench --bin watch -- --validate $stream_files
torn="$(ls "$kr_dir"/killed/cell*.stream.killed 2>/dev/null | head -n 1)"
[ -n "$torn" ] || torn="$kr_dir/straight/cell0.stream"
cargo run --release -q -p flashsim-bench --bin report -- --from-stream "$torn" > /dev/null
echo "streams validate, prefix-stable per provenance; partial report stitches from a torn tail"
rm -rf "$kr_dir"

echo "== profile smoke (cycle-accounting conservation) =="
# GoldenMachine + one simulator over FFT with the accounting profiler
# attached; the binary itself verifies conservation (per-node per-class
# sums equal total cycles on both platforms) and that the attribution's
# per-class contributions sum to the total relative error, exiting
# nonzero on any violation.
cargo run --release -q -p flashsim-bench --bin profile

echo "== report smoke (manifest + accounting + telemetry stitching) =="
# Unified run report over a 2-node FFT through the supervised matrix:
# the binary gates on accounting conservation, exact integer-ps
# telemetry conservation, and flashsim-telemetry-v1 schema validity,
# exiting nonzero on any violation. The JSONL export is then re-checked
# through the standalone --validate mode (the same entry point external
# consumers get).
report_jsonl="$(mktemp)"
report_spans="$(mktemp)"
cargo run --release -q -p flashsim-bench --bin report -- --nodes 2 \
    --jsonl "$report_jsonl" --spans-jsonl "$report_spans" > /dev/null
cargo run --release -q -p flashsim-bench --bin report -- --validate "$report_jsonl"

echo "== spans smoke (span diff + flashsim-span-v1 schema gate) =="
# Span diff over the hotspot drive: the binary gates on schema validity,
# exact charge tiling, sampler alignment across platforms, and the
# MAGIC-occupancy-leg signature (present on FlashLite, absent on NUMA),
# exiting nonzero on any violation. Both its export and the report's
# machine-layer export are re-checked through the standalone --validate
# mode (the same entry point external consumers get).
spans_jsonl="$(mktemp)"
cargo run --release -q -p flashsim-bench --bin spans -- \
    --jsonl-fl "$spans_jsonl" > /dev/null
cargo run --release -q -p flashsim-bench --bin spans -- --validate "$spans_jsonl"
cargo run --release -q -p flashsim-bench --bin spans -- --validate "$report_spans"
rm -f "$report_jsonl" "$report_spans" "$spans_jsonl"

echo "== all checks passed =="
